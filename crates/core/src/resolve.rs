//! Incremental re-solve for dynamic graphs.
//!
//! A solved instance plus an [`EditScript`] rarely needs a full
//! re-solve: churn is local, and the paper line's component machinery
//! (prep decomposition, in-search splitting, the union-find
//! connectivity tracker) already treats connected components as
//! independent sub-problems. This module turns that into the
//! **invalidation unit** for dynamic graphs:
//!
//! 1. **Restriction.** Every solve in this workspace decides each
//!    connected component of the input independently (the engine never
//!    lets information flow between components — prep literally solves
//!    them as separate sub-searches, and an optimal cover restricted
//!    to a component is optimal for that component). So a previous
//!    *exact* result implicitly caches one optimum per component.
//! 2. **Invalidation.** Each edit op names the vertices it touches;
//!    a component none of the batch's ops touch keeps its cached
//!    optimum verbatim. Inserts that bridge two components dirty both
//!    (their invalidation sets merge — both endpoints are touched);
//!    deletes that split a component dirty it once and the relabel
//!    step discovers the new pieces.
//! 3. **Warm bounds.** The dirty region is re-solved as one induced
//!    sub-instance seeded with a *patched* previous cover (upper
//!    bound) and a *slack-discounted* previous optimum (lower bound):
//!
//!    * **UB** — take the previous cover's dirty-region vertices,
//!      drop any the edits isolated, then for each inserted edge left
//!      uncovered add its lighter endpoint. Every surviving old edge
//!      still has its old coverage and every new edge is explicitly
//!      patched, so this is a valid cover of the edited dirty region.
//!    * **LB** — deleting an edge `{u, v}` lowers the optimum by at
//!      most `min(w(u), w(v))` (cover the smaller graph, add that
//!      endpoint back); deleting a vertex by at most its own weight;
//!      insertions never lower it. So
//!      `old dirty optimum − Σ deletion slack` is a true lower bound.
//!
//!    When the two meet, the patched cover is already optimal and the
//!    search is skipped outright ([`ResolveStats::warm_skips`]);
//!    otherwise the engine starts from the patched incumbent under
//!    any policy/executor.
//! 4. **Label reuse.** The session keeps per-vertex component labels
//!    across calls: one full union-find build at session start, then
//!    only the dirty region is relabeled (fresh label ids) after each
//!    batch. [`ResolveSession::rebuild_labels_every_call`] switches to
//!    the old checkpoint-rebuild behaviour for A/B comparison —
//!    [`ResolveStats::uf_rebuilds`] counts full builds either way.
//!
//! A result produced by a timed-out solve is not exact, so nothing can
//! be reused from it: the session falls back to a full from-scratch
//! solve (every component counted invalidated) and becomes exact again
//! the moment one completes within budget.
//!
//! ```
//! use parvc_core::{Algorithm, Solver, is_vertex_cover};
//! use parvc_graph::gen;
//!
//! let g = gen::sparse_components(60, 10, 0.5, 3);
//! let solver = Solver::builder().algorithm(Algorithm::Sequential).build();
//! let prev = solver.solve_mvc(&g);
//!
//! // Churn confined to one of the six communities…
//! let edits = gen::edit_script(&g, 6, 0.5, 7);
//! let r = solver.resolve(&g, &prev, &edits).unwrap();
//!
//! // …matches a from-scratch solve of the edited graph.
//! let scratch = solver.solve_mvc(&r.graph);
//! assert_eq!(r.result.size, scratch.size);
//! assert!(is_vertex_cover(&r.graph, &r.result.cover));
//! assert!(r.stats.components_reused + r.stats.components_invalidated
//!     == r.stats.components_total);
//! ```

use std::collections::BTreeSet;
use std::time::Instant;

use parvc_graph::ops::{connected_components, induced_subgraph};
use parvc_graph::{CsrGraph, EditError, EditScript, VertexId};
use parvc_obs::SpanTimer;

use crate::solver::{SolveObs, Solver};
use crate::stats::MvcResult;

/// What one [`ResolveSession::resolve`] call reused, invalidated, and
/// re-computed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Connected components of the graph **before** this batch.
    pub components_total: u32,
    /// Components no op touched — their cached optima were taken
    /// verbatim.
    pub components_reused: u32,
    /// Components at least one op touched (a bridging insert touches,
    /// and therefore merges, both sides).
    pub components_invalidated: u32,
    /// Invalidated components actually re-solved by the engine (0 when
    /// the warm bounds met and the search was skipped).
    pub components_resolved: u32,
    /// Calls where the warm upper bound turned out to equal the dirty
    /// region's new optimum (the patched previous cover was already
    /// optimal).
    pub warm_bound_hits: u32,
    /// Calls where warm UB == warm LB *before* searching, skipping the
    /// engine entirely.
    pub warm_skips: u32,
    /// Cumulative full union-find label builds over the session's
    /// lifetime (1 after construction; label reuse keeps it there,
    /// [`ResolveSession::rebuild_labels_every_call`] grows it by one
    /// per call).
    pub uf_rebuilds: u64,
    /// Tree nodes the dirty-region re-solve visited (0 on reuse-only
    /// calls) — the work a from-scratch solve would have multiplied.
    pub resolve_tree_nodes: u64,
}

/// The outcome of one incremental re-solve: the edited graph, a result
/// equivalent to a from-scratch [`Solver::solve_mvc`] on it, and the
/// reuse accounting.
#[derive(Debug)]
pub struct Resolved {
    /// The graph after applying the edit script.
    pub graph: CsrGraph,
    /// The new optimum — same contract as [`Solver::solve_mvc`] on
    /// [`graph`](Self::graph) (exact when nothing timed out).
    pub result: MvcResult,
    /// Reuse/invalidation accounting for this call.
    pub stats: ResolveStats,
}

/// A long-lived incremental re-solve session: the current graph, its
/// current optimal cover, and per-vertex component labels reused call
/// to call. Create one with [`Solver::resolve_session`] (or use the
/// one-shot [`Solver::resolve`]) and feed it successive edit batches.
pub struct ResolveSession<'s> {
    solver: &'s Solver,
    graph: CsrGraph,
    cover: Vec<VertexId>,
    /// Component label per vertex. Labels are never recycled within a
    /// session (fresh ids per relabel), so stale and fresh regions
    /// cannot collide.
    label: Vec<u32>,
    comp_count: u32,
    next_label: u32,
    uf_rebuilds: u64,
    reuse_labels: bool,
    /// Whether `cover` is a known optimum (false after a timeout —
    /// then nothing is reusable and the next call re-solves fully).
    exact: bool,
}

impl Solver {
    /// One-shot incremental re-solve: `prev` must be this solver's
    /// [`solve_mvc`](Solver::solve_mvc) result for `g` (or any exact
    /// optimum with a valid cover of `g`). Applies `edits`, re-solves
    /// only the components the batch touches, and returns the edited
    /// graph with its new optimum. For repeated churn against the
    /// same instance, hold a [`ResolveSession`] instead — it carries
    /// the component labels forward so later batches skip the full
    /// union-find rebuild this constructor performs.
    pub fn resolve(
        &self,
        g: &CsrGraph,
        prev: &MvcResult,
        edits: &EditScript,
    ) -> Result<Resolved, EditError> {
        self.resolve_session(g, prev).resolve(edits)
    }

    /// Starts an incremental re-solve session from a solved instance.
    /// Performs the session's one full component labeling (counted in
    /// [`ResolveStats::uf_rebuilds`]).
    pub fn resolve_session<'s>(&'s self, g: &CsrGraph, prev: &MvcResult) -> ResolveSession<'s> {
        ResolveSession::from_solved(self, g, prev)
    }
}

impl<'s> ResolveSession<'s> {
    /// See [`Solver::resolve_session`].
    pub fn from_solved(solver: &'s Solver, g: &CsrGraph, prev: &MvcResult) -> Self {
        debug_assert!(
            crate::verify::is_vertex_cover(g, &prev.cover),
            "previous result must carry a valid cover of the session graph"
        );
        let (label, comp_count) = connected_components(g);
        ResolveSession {
            solver,
            graph: g.clone(),
            cover: prev.cover.clone(),
            label,
            comp_count,
            next_label: comp_count,
            uf_rebuilds: 1,
            reuse_labels: true,
            exact: !prev.stats.timed_out,
        }
    }

    /// Switches to the pre-session behaviour for A/B comparison:
    /// recompute every vertex's component label from scratch on every
    /// call instead of relabeling only the dirty region.
    /// [`ResolveStats::uf_rebuilds`] then grows by one per call.
    pub fn rebuild_labels_every_call(mut self) -> Self {
        self.reuse_labels = false;
        self
    }

    /// The session's current graph (after all batches so far).
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The session's current cover.
    pub fn cover(&self) -> &[VertexId] {
        &self.cover
    }

    /// Applies one edit batch and returns the edited graph's new
    /// optimum, re-solving only what the batch dirtied (see the module
    /// docs for the invalidation and warm-bound rules). Errors leave
    /// the session untouched.
    pub fn resolve(&mut self, edits: &EditScript) -> Result<Resolved, EditError> {
        let start = Instant::now();
        let (sink, heartbeat) = self.solver.solve_observers();
        let obs = SolveObs::new(sink.as_ref(), heartbeat.as_ref());
        let t_total = SpanTimer::start(obs.sink);

        let t_patch = SpanTimer::start(obs.sink);
        let edited = edits.apply(&self.graph)?;
        t_patch.finish(obs.sink, "resolve", "patch", 0, edits.len() as u64);

        let mut resolved = if self.exact {
            self.resolve_incremental(&edited, edits, start, obs)
        } else {
            // A timed-out previous solve caches nothing trustworthy:
            // re-solve the whole edited instance from scratch.
            self.resolve_from_scratch(&edited, obs)
        };
        resolved.stats.uf_rebuilds = self.uf_rebuilds;

        obs.sink.counter(
            "resolve.components_reused",
            resolved.stats.components_reused as u64,
        );
        obs.sink.counter(
            "resolve.components_invalidated",
            resolved.stats.components_invalidated as u64,
        );
        obs.sink.counter(
            "resolve.components_resolved",
            resolved.stats.components_resolved as u64,
        );
        obs.sink.counter(
            "resolve.warm_bound_hits",
            resolved.stats.warm_bound_hits as u64,
        );
        obs.sink
            .counter("resolve.warm_skips", resolved.stats.warm_skips as u64);
        t_total.finish(obs.sink, "resolve", "resolve", 0, edits.len() as u64);

        self.graph = resolved.graph.clone();
        self.cover = resolved.result.cover.clone();
        self.exact = !resolved.result.stats.timed_out;
        resolved.result.stats.wall_time = start.elapsed();
        self.solver
            .finish_telemetry(sink, &mut resolved.result.stats);
        Ok(resolved)
    }

    /// The trusted path: previous optimum is exact, so untouched
    /// components keep their restricted optima and only the dirty
    /// region is re-solved under warm bounds.
    fn resolve_incremental(
        &mut self,
        edited: &CsrGraph,
        edits: &EditScript,
        start: Instant,
        obs: SolveObs<'_>,
    ) -> Resolved {
        let n_before = self.graph.num_vertices();
        let touched = edits.touched_existing(n_before);
        let dirty: BTreeSet<u32> = touched.iter().map(|&v| self.label[v as usize]).collect();

        let mut stats = ResolveStats {
            components_total: self.comp_count,
            components_invalidated: dirty.len() as u32,
            components_reused: self.comp_count - dirty.len() as u32,
            ..ResolveStats::default()
        };

        // The dirty sub-instance: every old vertex in a touched
        // component plus every vertex the script appended (new
        // vertices have no cached component; edges to old vertices
        // already dirtied those endpoints' components).
        let mut keep: Vec<VertexId> = (0..n_before)
            .filter(|&v| dirty.contains(&self.label[v as usize]))
            .collect();
        keep.extend(n_before..edited.num_vertices());

        // The reused part of the cover: previous cover minus the
        // dirty region (clean components are untouched by every op,
        // so their restricted optima still cover exactly their edges).
        let clean_cover: Vec<VertexId> = self
            .cover
            .iter()
            .copied()
            .filter(|&v| !dirty.contains(&self.label[v as usize]))
            .collect();

        if keep.is_empty() {
            // Empty batch: nothing dirtied, the cached result stands.
            let result = MvcResult {
                size: self.cover.len() as u32,
                weight: edited.cover_weight(&self.cover),
                cover: self.cover.clone(),
                stats: self.solver.trivial_stats(start, 0),
            };
            self.relabel(edited, &[], &[], 0);
            return Resolved {
                graph: edited.clone(),
                result,
                stats,
            };
        }

        let (sub, old_to_new) = induced_subgraph(edited, &keep);

        // Warm upper bound: patch the previous cover onto the edited
        // dirty region (see the module docs for why this is a cover).
        let warm = self.patch_cover(&sub, &old_to_new);
        let weighted = self.solver.cfg.weighted;
        let warm_ub = objective(&sub, &warm, weighted);

        // Warm lower bound: the old dirty region's restricted optimum
        // minus the batch's deletion slack.
        let summary = edits.summary(&self.graph);
        let slack = if weighted {
            summary.slack_weight
        } else {
            summary.slack_cardinality
        };
        let old_dirty_cover: Vec<VertexId> = self
            .cover
            .iter()
            .copied()
            .filter(|&v| dirty.contains(&self.label[v as usize]))
            .collect();
        let warm_lb = objective(&self.graph, &old_dirty_cover, weighted).saturating_sub(slack);

        let sub_result = if warm_ub == warm_lb {
            // The patched cover is provably optimal — skip the search.
            stats.warm_skips = 1;
            stats.warm_bound_hits = 1;
            MvcResult {
                size: warm.len() as u32,
                weight: sub.cover_weight(&warm),
                cover: warm,
                stats: self.solver.trivial_stats(start, 0),
            }
        } else {
            stats.components_resolved = stats.components_invalidated;
            let t_solve = SpanTimer::start(obs.sink);
            let mut r = self.solver.solve_mvc_with(&sub, Some(&warm), obs);
            t_solve.finish(obs.sink, "resolve", "sub-solve", 0, keep.len() as u64);
            // The kernelized path cannot thread the warm incumbent
            // through prep's relabeling, and a timed-out search can
            // return worse than its seed: the patched cover is always
            // available, so never do worse than it.
            if objective(&sub, &r.cover, weighted) > warm_ub {
                r.size = warm.len() as u32;
                r.weight = sub.cover_weight(&warm);
                r.cover = warm;
            }
            if objective(&sub, &r.cover, weighted) == warm_ub {
                stats.warm_bound_hits = 1;
            }
            r
        };
        stats.resolve_tree_nodes = sub_result.stats.tree_nodes;

        // Stitch: reused clean optima + the dirty region's new
        // optimum mapped back to global ids.
        let mut cover = clean_cover;
        cover.extend(sub_result.cover.iter().map(|&v| keep[v as usize]));
        cover.sort_unstable();

        self.relabel(edited, &keep, &old_to_new, dirty.len() as u32);

        let mut solve_stats = sub_result.stats;
        solve_stats.wall_time = start.elapsed();
        let result = MvcResult {
            size: cover.len() as u32,
            weight: edited.cover_weight(&cover),
            cover,
            stats: solve_stats,
        };
        Resolved {
            graph: edited.clone(),
            result,
            stats,
        }
    }

    /// The untrusted path: previous result was inexact (timeout), so
    /// every component counts as invalidated and the edited graph is
    /// solved from scratch.
    fn resolve_from_scratch(&mut self, edited: &CsrGraph, obs: SolveObs<'_>) -> Resolved {
        let stats = ResolveStats {
            components_total: self.comp_count,
            components_invalidated: self.comp_count,
            components_resolved: self.comp_count,
            ..ResolveStats::default()
        };
        let result = self.solver.solve_mvc_with(edited, None, obs);
        let mut stats = stats;
        stats.resolve_tree_nodes = result.stats.tree_nodes;
        let (label, count) = connected_components(edited);
        self.label = label;
        self.comp_count = count;
        self.next_label = count;
        self.uf_rebuilds += 1;
        Resolved {
            graph: edited.clone(),
            result,
            stats,
        }
    }

    /// Maps the previous cover onto the dirty sub-instance and patches
    /// it into a valid cover of the edited dirty region: keep mapped
    /// survivors, drop the now-isolated, then cover each remaining
    /// uncovered (inserted) edge with its lighter endpoint.
    fn patch_cover(&self, sub: &CsrGraph, old_to_new: &[u32]) -> Vec<VertexId> {
        let n = sub.num_vertices() as usize;
        let mut in_cover = vec![false; n];
        for &v in &self.cover {
            let nv = old_to_new[v as usize];
            if nv != u32::MAX && sub.degree(nv) > 0 {
                in_cover[nv as usize] = true;
            }
        }
        for (u, v) in sub.edges() {
            if !in_cover[u as usize] && !in_cover[v as usize] {
                let pick = if sub.weight(u) <= sub.weight(v) { u } else { v };
                in_cover[pick as usize] = true;
            }
        }
        (0..n as u32).filter(|&v| in_cover[v as usize]).collect()
    }

    /// Refreshes component labels after a batch. Reuse mode relabels
    /// only the dirty sub-instance's vertices with fresh label ids;
    /// baseline mode recomputes all labels (one more full union-find
    /// build).
    fn relabel(&mut self, edited: &CsrGraph, keep: &[VertexId], _old_to_new: &[u32], dirtied: u32) {
        if !self.reuse_labels {
            let (label, count) = connected_components(edited);
            self.label = label;
            self.comp_count = count;
            self.next_label = count;
            self.uf_rebuilds += 1;
            return;
        }
        if keep.is_empty() {
            return;
        }
        // Localized relabel: fresh labels for the dirty region only.
        // Clean components keep their labels; dirtied label ids are
        // simply abandoned (labels are never recycled in-session).
        let (sub, _) = induced_subgraph(edited, keep);
        let (sub_label, sub_count) = connected_components(&sub);
        self.label.resize(edited.num_vertices() as usize, 0);
        for (new, &old) in keep.iter().enumerate() {
            self.label[old as usize] = self.next_label + sub_label[new];
        }
        self.next_label += sub_count;
        self.comp_count = self.comp_count - dirtied + sub_count;
    }
}

/// The cover's objective in the solve's own units: cardinality for
/// plain MVC, total weight for weighted MVC.
fn objective(g: &CsrGraph, cover: &[VertexId], weighted: bool) -> u64 {
    if weighted {
        g.cover_weight(cover)
    } else {
        cover.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Algorithm;
    use crate::verify::is_vertex_cover;
    use parvc_graph::gen;
    use parvc_graph::Edit;

    fn seq() -> Solver {
        Solver::builder().algorithm(Algorithm::Sequential).build()
    }

    #[test]
    fn empty_script_is_a_pure_cache_hit() {
        let g = gen::sparse_components(40, 8, 0.5, 1);
        let solver = seq();
        let prev = solver.solve_mvc(&g);
        let r = solver.resolve(&g, &prev, &EditScript::new()).unwrap();
        assert_eq!(r.result.size, prev.size);
        assert_eq!(r.result.cover, prev.cover);
        assert_eq!(r.stats.components_invalidated, 0);
        assert_eq!(r.stats.components_reused, r.stats.components_total);
        assert_eq!(r.stats.resolve_tree_nodes, 0);
    }

    #[test]
    fn single_edge_delete_matches_scratch() {
        let g = gen::gnp(20, 0.25, 5);
        let solver = seq();
        let prev = solver.solve_mvc(&g);
        let (u, v) = g.edges().next().unwrap();
        let edits = EditScript::from_ops(vec![Edit::DeleteEdge(u, v)]);
        let r = solver.resolve(&g, &prev, &edits).unwrap();
        let scratch = solver.solve_mvc(&r.graph);
        assert_eq!(r.result.size, scratch.size);
        assert!(is_vertex_cover(&r.graph, &r.result.cover));
    }

    #[test]
    fn bridging_insert_merges_both_invalidation_sets() {
        // Two disjoint triangles; an inserted bridge dirties both.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let solver = seq();
        let prev = solver.solve_mvc(&g);
        let edits = EditScript::from_ops(vec![Edit::InsertEdge(0, 3)]);
        let r = solver.resolve(&g, &prev, &edits).unwrap();
        assert_eq!(r.stats.components_total, 2);
        assert_eq!(r.stats.components_invalidated, 2);
        assert_eq!(r.stats.components_reused, 0);
        let scratch = solver.solve_mvc(&r.graph);
        assert_eq!(r.result.size, scratch.size);
    }

    #[test]
    fn session_chains_batches() {
        let g = gen::gnp(24, 0.2, 9);
        let solver = seq();
        let prev = solver.solve_mvc(&g);
        let mut session = solver.resolve_session(&g, &prev);
        for round in 0..4u64 {
            let edits = gen::edit_script(session.graph(), 8, 0.5, round);
            let r = session.resolve(&edits).unwrap();
            let scratch = solver.solve_mvc(&r.graph);
            assert_eq!(r.result.size, scratch.size, "round {round}");
            assert!(is_vertex_cover(&r.graph, &r.result.cover));
        }
        assert_eq!(session.uf_rebuilds, 1, "reuse mode never rebuilds");
    }

    #[test]
    fn baseline_mode_rebuilds_every_call() {
        let g = gen::gnp(20, 0.2, 2);
        let solver = seq();
        let prev = solver.solve_mvc(&g);
        let mut session = solver
            .resolve_session(&g, &prev)
            .rebuild_labels_every_call();
        for round in 0..3u64 {
            let edits = gen::edit_script(session.graph(), 5, 0.5, round + 50);
            session.resolve(&edits).unwrap();
        }
        assert_eq!(session.uf_rebuilds, 4, "1 initial + 1 per call");
    }

    #[test]
    fn inexact_previous_result_falls_back_to_scratch() {
        let g = gen::gnp(20, 0.25, 4);
        let solver = seq();
        let mut prev = solver.solve_mvc(&g);
        prev.stats.timed_out = true; // simulate a budget hit
        let edits = EditScript::from_ops(vec![]);
        let r = solver.resolve(&g, &prev, &edits).unwrap();
        assert_eq!(
            r.stats.components_invalidated, r.stats.components_total,
            "nothing is reusable from an inexact result"
        );
        let scratch = solver.solve_mvc(&g);
        assert_eq!(r.result.size, scratch.size);
    }

    #[test]
    fn vertex_insert_with_edges_matches_scratch() {
        let g = gen::gnp(15, 0.3, 6);
        let solver = seq();
        let prev = solver.solve_mvc(&g);
        let edits = EditScript::from_ops(vec![
            Edit::InsertVertex { weight: 1 },
            Edit::InsertEdge(15, 0),
            Edit::InsertEdge(15, 7),
        ]);
        let r = solver.resolve(&g, &prev, &edits).unwrap();
        let scratch = solver.solve_mvc(&r.graph);
        assert_eq!(r.result.size, scratch.size);
        assert!(is_vertex_cover(&r.graph, &r.result.cover));
    }

    #[test]
    fn weighted_resolve_matches_scratch() {
        let g = gen::with_uniform_weights(gen::gnp(16, 0.25, 8), 9, 3);
        let solver = Solver::builder()
            .algorithm(Algorithm::Sequential)
            .weighted()
            .build();
        let prev = solver.solve_mvc(&g);
        for seed in 0..4u64 {
            let edits = gen::edit_script(&g, 6, 0.5, seed);
            let r = solver.resolve(&g, &prev, &edits).unwrap();
            let scratch = solver.solve_mvc(&r.graph);
            assert_eq!(r.result.weight, scratch.weight, "seed {seed}");
            assert!(is_vertex_cover(&r.graph, &r.result.cover));
        }
    }

    #[test]
    fn invalid_script_leaves_the_session_untouched() {
        let g = gen::gnp(12, 0.3, 1);
        let solver = seq();
        let prev = solver.solve_mvc(&g);
        let mut session = solver.resolve_session(&g, &prev);
        let (u, v) = g.edges().next().unwrap();
        let bad = EditScript::from_ops(vec![Edit::InsertEdge(u, v)]);
        assert!(session.resolve(&bad).is_err());
        assert_eq!(session.graph().num_edges(), g.num_edges());
        // The session still works afterwards.
        let ok = EditScript::from_ops(vec![Edit::DeleteEdge(u, v)]);
        let r = session.resolve(&ok).unwrap();
        let scratch = solver.solve_mvc(&r.graph);
        assert_eq!(r.result.size, scratch.size);
    }
}
