//! The ultra-fast approximate tier: provably 2×-bounded covers that
//! seed the exact engine.
//!
//! Two algorithms, both linear-ish and both carrying a *certificate*:
//!
//! * **Round-compressed maximal matching** (cardinality mode, after
//!   the round-based matchings of arXiv 1709.04599): synchronous
//!   handshake rounds — every unmatched vertex picks its minimum-id
//!   unmatched neighbor, mutual picks match — whose per-round scans
//!   run through the [`ParallelExecutor`] seam as flat passes. The
//!   globally minimal unmatched vertex with an unmatched neighbor
//!   always handshakes, so every round matches at least one edge; once
//!   fewer than [`COMPRESS_BELOW`] vertices stay active, the tail
//!   rounds are *compressed* into one serial greedy sweep (the
//!   low-degree endgame where synchronous scans stop paying). Both
//!   endpoints of the resulting maximal matching form a cover within
//!   2× of the optimum, and the matching size is the matching lower
//!   bound. A final prune drops endpoints whose edges are already
//!   covered — validity and the 2× band survive, the seed only
//!   improves.
//! * **Primal-dual weighted cover** (Bar-Yehuda–Even, arXiv
//!   cs/0205037): [`parvc_graph::matching::primal_dual_cover`] — tight
//!   vertices cover at weight `≤ 2·dual`, and the dual is a lower
//!   bound on *every* cover, strictly dominating
//!   [`min_weight_matching_bound`](parvc_graph::matching::min_weight_matching_bound)
//!   whenever an edge can raise its dual past the cheaper endpoint of
//!   a matched neighbor.
//!
//! ## Executor invariance
//!
//! The matching passes obey the seam's chunking-invariance contract:
//! pick slots are written once per vertex from the *previous* round's
//! matched state (a pure function, so any chunking writes the same
//! values), handshake flags are symmetric single-slot writes, and the
//! active count is an associative sum of per-chunk subtotals. Cycle
//! charges ([`Activity::ApproxMatching`]) are computed from instance
//! quantities only — a pooled run bit-matches a serial run's cover,
//! round count, and counters, and both bit-match the serial reference
//! [`parvc_graph::matching::handshake_matching`].
//!
//! ## Where it plugs in
//!
//! [`SeedStrategy::Approx`] replaces the `O(best·|V|)` greedy seeds at
//! every call site that only needs an upper bound: the solver launch,
//! `split.rs` sub-instance budgets, and the resolve warm-seed repair
//! (which rides on solver seeding). Independently of the strategy, the
//! weighted split path always takes `max(matching, dual)` as its
//! per-component lower bound via [`parvc_prep::weighted_lower_bound`].

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use parvc_graph::{matching, CsrGraph, VertexId};
use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::exec::ParallelExecutor;

/// Active-vertex threshold below which the remaining handshake rounds
/// collapse into one serial greedy sweep. Matches the serial reference
/// so executor and reference runs stay bit-identical.
pub const COMPRESS_BELOW: usize = 64;

/// "No pick" sentinel in the handshake pick array.
const NIL: u32 = u32::MAX;

/// Which initial-bound algorithm seeds a solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SeedStrategy {
    /// The reduction-driven greedy seeds (`greedy_mvc` /
    /// `greedy_weighted_mvc`): usually tighter, but `O(best·|V|)` and
    /// certificate-free.
    #[default]
    Greedy,
    /// The approximate tier: linear-time covers within 2× of the
    /// optimum, with a matching / dual lower-bound certificate.
    Approx,
}

impl SeedStrategy {
    /// Parses `greedy` or `approx` (the CLI's `--seed` values).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "greedy" => Ok(SeedStrategy::Greedy),
            "approx" => Ok(SeedStrategy::Approx),
            _ => Err(format!("unknown seed strategy '{s}' (greedy | approx)")),
        }
    }
}

impl std::fmt::Display for SeedStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeedStrategy::Greedy => write!(f, "greedy"),
            SeedStrategy::Approx => write!(f, "approx"),
        }
    }
}

/// An approximate cover plus its quality certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproxCover {
    /// Cover vertices, ascending.
    pub cover: Vec<VertexId>,
    /// Cover cost in the instance's objective: cardinality for
    /// unweighted graphs, total weight for weighted ones.
    pub cost: u64,
    /// The certificate: a valid lower bound on the optimum (matching
    /// size / primal-dual value). Always `cost ≤ 2 × lower_bound`.
    pub lower_bound: u64,
    /// Handshake rounds executed (1 for the weighted primal-dual
    /// pass).
    pub rounds: u32,
    /// Whether the matching tail was compressed into a serial sweep.
    pub compressed: bool,
}

/// The approximate tier's entry point: the 2×-bounded cover for `g`
/// under either objective. Unweighted instances run the
/// round-compressed matching on `exec`; weighted ones run the serial
/// primal-dual pass (already `O(|V| + |E|)` — there is nothing to
/// parallelize past the edge scan's dependency chain).
pub fn approx_cover(
    g: &CsrGraph,
    weighted: bool,
    exec: &dyn ParallelExecutor,
    counters: &mut BlockCounters,
) -> ApproxCover {
    if weighted {
        weighted_approx_cover(g, counters)
    } else {
        matching_cover_exec(g, exec, counters)
    }
}

/// The primal-dual weighted 2-approximation, repackaged as an
/// [`ApproxCover`]: `cost ≤ 2 × dual ≤ 2 × OPT`, and the dual is
/// itself a valid lower bound. Charged to
/// [`Activity::ApproxMatching`] as one pass over the edges.
pub fn weighted_approx_cover(g: &CsrGraph, counters: &mut BlockCounters) -> ApproxCover {
    let pd = matching::primal_dual_cover(g);
    counters.charge(
        Activity::ApproxMatching,
        u64::from(g.num_vertices()) + g.num_edges(),
    );
    ApproxCover {
        cover: pd.cover,
        cost: pd.weight,
        lower_bound: pd.dual,
        rounds: 1,
        compressed: false,
    }
}

/// Round-compressed maximal-matching 2-approximation with the
/// per-round scans dispatched on `exec`.
///
/// Bit-matches [`matching::handshake_matching`] with
/// [`COMPRESS_BELOW`] under any executor: same matching, same round
/// count — the conformance tests cross-check all three (serial
/// reference, serial executor, pooled executor). The returned cover is
/// the matching's endpoint set after a deterministic redundancy prune;
/// `lower_bound` is the matching size.
pub fn matching_cover_exec(
    g: &CsrGraph,
    exec: &dyn ParallelExecutor,
    counters: &mut BlockCounters,
) -> ApproxCover {
    let n = g.num_vertices() as usize;
    let matched: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let pick: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NIL)).collect();
    let mut matching: Vec<(VertexId, VertexId)> = Vec::new();
    let mut rounds = 0u32;
    let mut compressed = false;
    loop {
        // Active = unmatched vertices with an unmatched neighbor; an
        // associative per-chunk sum, so executor-invariant.
        let active_total = AtomicU64::new(0);
        let matched_ro: &[AtomicBool] = &matched;
        exec.dispatch(n, &|_, start, end| {
            let mut local = 0u64;
            for v in start as u32..end as u32 {
                if !matched_ro[v as usize].load(Ordering::Relaxed)
                    && g.neighbors(v)
                        .iter()
                        .any(|&u| !matched_ro[u as usize].load(Ordering::Relaxed))
                {
                    local += 1;
                }
            }
            active_total.fetch_add(local, Ordering::Relaxed);
        });
        counters.charge(Activity::ApproxMatching, n as u64);
        let active = active_total.load(Ordering::Relaxed) as usize;
        if active == 0 {
            break;
        }
        rounds += 1;
        if active < COMPRESS_BELOW {
            // Round compression: one serial greedy sweep finishes the
            // low-degree tail (identical to the serial reference).
            for u in 0..n as u32 {
                if matched[u as usize].load(Ordering::Relaxed) {
                    continue;
                }
                let free = g
                    .neighbors(u)
                    .iter()
                    .find(|&&v| !matched[v as usize].load(Ordering::Relaxed));
                if let Some(&v) = free {
                    matched[u as usize].store(true, Ordering::Relaxed);
                    matched[v as usize].store(true, Ordering::Relaxed);
                    matching.push((u, v));
                }
            }
            counters.charge(Activity::ApproxMatching, active as u64);
            compressed = true;
            break;
        }
        // Pass 1: every unmatched vertex picks its minimum-id
        // unmatched neighbor. Each slot is written exactly once, from
        // the previous round's matched state only.
        exec.dispatch(n, &|_, start, end| {
            for v in start as u32..end as u32 {
                let p = if matched_ro[v as usize].load(Ordering::Relaxed) {
                    NIL
                } else {
                    g.neighbors(v)
                        .iter()
                        .copied()
                        .find(|&u| !matched_ro[u as usize].load(Ordering::Relaxed))
                        .unwrap_or(NIL)
                };
                pick[v as usize].store(p, Ordering::Relaxed);
            }
        });
        counters.charge(Activity::ApproxMatching, n as u64);
        // Pass 2: mutual picks match. The handshake predicate is
        // symmetric and reads only `pick`, so each vertex flags itself.
        let pick_ro: &[AtomicU32] = &pick;
        exec.dispatch(n, &|_, start, end| {
            for v in start as u32..end as u32 {
                let u = pick_ro[v as usize].load(Ordering::Relaxed);
                if u != NIL && pick_ro[u as usize].load(Ordering::Relaxed) == v {
                    matched_ro[v as usize].store(true, Ordering::Relaxed);
                }
            }
        });
        counters.charge(Activity::ApproxMatching, n as u64);
        // Collect this round's pairs in ascending-v order (serial —
        // the pairs are already determined).
        for v in 0..n as u32 {
            let u = pick[v as usize].load(Ordering::Relaxed);
            if u != NIL && v < u && pick[u as usize].load(Ordering::Relaxed) == v {
                matching.push((v, u));
            }
        }
    }
    let lower_bound = matching.len() as u64;
    // Endpoint cover, then the deterministic redundancy prune: drop a
    // cover vertex when all its neighbors are covered (ascending id —
    // at most one endpoint per matched edge can fall).
    let mut in_cover = vec![false; n];
    for &(u, v) in &matching {
        in_cover[u as usize] = true;
        in_cover[v as usize] = true;
    }
    for v in 0..n as u32 {
        if in_cover[v as usize] && g.neighbors(v).iter().all(|&u| in_cover[u as usize]) {
            in_cover[v as usize] = false;
        }
    }
    let cover: Vec<VertexId> = (0..n as u32).filter(|&v| in_cover[v as usize]).collect();
    ApproxCover {
        cost: cover.len() as u64,
        cover,
        lower_bound,
        rounds,
        compressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_mvc;
    use crate::verify::is_vertex_cover;
    use parvc_graph::gen;
    use parvc_simgpu::exec::{ExecutorSpec, SERIAL};

    #[test]
    fn matching_cover_bit_matches_the_serial_reference() {
        let pooled = ExecutorSpec::Pooled { threads: Some(3) }.build();
        for seed in 0..6 {
            let g = gen::gnp(80, 0.08, seed);
            let reference = matching::handshake_matching(&g, COMPRESS_BELOW);
            for exec in [&SERIAL as &dyn ParallelExecutor, &*pooled] {
                let mut c = BlockCounters::new(0);
                let got = matching_cover_exec(&g, exec, &mut c);
                assert_eq!(got.rounds, reference.rounds, "seed {seed}");
                assert_eq!(got.compressed, reference.compressed, "seed {seed}");
                assert_eq!(
                    got.lower_bound,
                    reference.matching.len() as u64,
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn matching_cover_is_valid_and_two_approx() {
        for seed in 0..8 {
            let g = gen::gnp(16, 0.25, seed);
            let mut c = BlockCounters::new(0);
            let a = matching_cover_exec(&g, &SERIAL, &mut c);
            assert!(is_vertex_cover(&g, &a.cover), "seed {seed}");
            let (opt, _) = brute_force_mvc(&g);
            assert!(a.cost <= 2 * u64::from(opt), "seed {seed}");
            assert!(a.lower_bound <= u64::from(opt), "seed {seed}");
            assert!(a.cost <= 2 * a.lower_bound, "seed {seed}");
        }
    }

    #[test]
    fn matching_cover_prune_recovers_the_star_optimum() {
        // Matching (0,1) covers {0,1}; the leaf endpoint is redundant
        // once the hub is in — the prune must find the optimum {0}.
        let g = gen::star(8);
        let mut c = BlockCounters::new(0);
        let a = matching_cover_exec(&g, &SERIAL, &mut c);
        assert_eq!(a.cover, vec![0]);
        assert_eq!(a.cost, 1);
        assert_eq!(a.lower_bound, 1);
    }

    #[test]
    fn weighted_cover_carries_the_dual_certificate() {
        for seed in 0..6 {
            let g = gen::with_uniform_weights(gen::gnp(14, 0.3, seed), 8, seed ^ 0x7e);
            let mut c = BlockCounters::new(0);
            let a = weighted_approx_cover(&g, &mut c);
            assert!(is_vertex_cover(&g, &a.cover), "seed {seed}");
            assert_eq!(a.cost, g.cover_weight(&a.cover), "seed {seed}");
            assert!(a.cost <= 2 * a.lower_bound, "seed {seed}");
            let (opt, _) = crate::brute::weighted_brute_force(&g);
            assert!(a.lower_bound <= opt, "seed {seed}: dual exceeds optimum");
            assert!(a.cost <= 2 * opt, "seed {seed}: 2x band broken");
        }
    }

    #[test]
    fn approx_cover_dispatches_on_mode() {
        let g = gen::with_uniform_weights(gen::gnp(20, 0.2, 3), 6, 9);
        let mut c = BlockCounters::new(0);
        let w = approx_cover(&g, true, &SERIAL, &mut c);
        let u = approx_cover(&g, false, &SERIAL, &mut c);
        assert_eq!(w.rounds, 1, "weighted mode is the one-pass primal-dual");
        assert_eq!(
            u.cost,
            u.cover.len() as u64,
            "unweighted cost is cardinality"
        );
        assert!(is_vertex_cover(&g, &w.cover));
        assert!(is_vertex_cover(&g, &u.cover));
    }

    #[test]
    fn seed_strategy_parses_and_displays() {
        assert_eq!(SeedStrategy::parse("greedy"), Ok(SeedStrategy::Greedy));
        assert_eq!(SeedStrategy::parse("approx"), Ok(SeedStrategy::Approx));
        assert!(SeedStrategy::parse("fast").is_err());
        assert_eq!(SeedStrategy::Approx.to_string(), "approx");
        assert_eq!(SeedStrategy::default(), SeedStrategy::Greedy);
    }

    #[test]
    fn edgeless_graphs_yield_empty_covers() {
        let g = parvc_graph::CsrGraph::from_edges(9, &[]).unwrap();
        let mut c = BlockCounters::new(0);
        let a = matching_cover_exec(&g, &SERIAL, &mut c);
        assert_eq!(a.cover, Vec::<u32>::new());
        assert_eq!((a.cost, a.lower_bound, a.rounds), (0, 0, 0));
    }
}
