//! The greedy MVC approximation (§II-B).
//!
//! Runs on the CPU before every kernel launch, serving two roles:
//! it initializes the global `best` (Figure 1 line 1), and its size
//! bounds the search depth, sizing the pre-allocated per-block stacks
//! (§IV-E) — no branch ever covers more vertices than `best`.

use parvc_graph::{CsrGraph, VertexId};
use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::CostModel;

use crate::bound::SearchBound;
use crate::ops::Kernel;
use crate::TreeNode;

/// Greedy approximate minimum vertex cover: apply all reduction rules,
/// remove the max-degree vertex, repeat until edgeless. Returns the
/// cover size and the cover itself.
pub fn greedy_mvc(g: &CsrGraph) -> (u32, Vec<VertexId>) {
    let deadline = crate::shared::Deadline::new(None);
    greedy_mvc_bounded(g, &deadline)
}

/// [`greedy_mvc`] under a wall-clock budget. The greedy loop is
/// `O(best · |V|)`, which on `Scale::Massive` instances can exceed the
/// whole solve budget before the engine even launches; when `deadline`
/// expires mid-loop the remaining positive-degree vertices are swept
/// into the cover wholesale — still a valid cover, just a weak bound —
/// and the solve reports `timed_out` through the deadline's sticky
/// flag.
pub fn greedy_mvc_bounded(
    g: &CsrGraph,
    deadline: &crate::shared::Deadline,
) -> (u32, Vec<VertexId>) {
    let cost = CostModel::default();
    let kernel = Kernel::sequential(g, &cost);
    let mut counters = BlockCounters::new(u32::MAX);
    let mut node = TreeNode::root(g);
    // No `best` exists yet, so the high-degree rule is inert
    // (`u32::MAX` budget); degree-one and degree-two-triangle do fire.
    let bound = SearchBound::Mvc { best: u32::MAX };
    loop {
        if deadline.expired() {
            // Budget spent: cover every remaining live edge by taking
            // its (currently) positive-degree endpoints.
            for v in g.vertices() {
                if node.degree(v) > 0 {
                    node.remove_into_cover(g, v);
                }
            }
            break;
        }
        kernel.reduce(&mut node, bound, &mut counters);
        if node.is_edgeless() {
            break;
        }
        let vmax = kernel
            .find_max_degree(&node, &mut counters)
            .expect("non-edgeless graph has vertices");
        kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, &mut counters);
    }
    (node.cover_size(), node.cover_vertices())
}

/// The classic maximal-matching 2-approximation (Gavril/Yannakakis):
/// both endpoints of every edge of a maximal matching. Guaranteed
/// within 2× of the optimum in linear time — the paper's §I cites this
/// approximation line of work; it also provides an independent sanity
/// band for the exact solvers (`opt ∈ [|cover|/2, |cover|]`).
pub fn two_approx_mvc(g: &CsrGraph) -> Vec<VertexId> {
    let matching = parvc_graph::matching::greedy_maximal_matching(g);
    let mut cover = Vec::with_capacity(matching.len() * 2);
    for (u, v) in matching {
        cover.push(u);
        cover.push(v);
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_mvc;
    use crate::verify::is_vertex_cover;
    use parvc_graph::gen;

    #[test]
    fn greedy_returns_a_valid_cover() {
        for seed in 0..8 {
            let g = gen::gnp(40, 0.15, seed);
            let (size, cover) = greedy_mvc(&g);
            assert_eq!(size as usize, cover.len());
            assert!(
                is_vertex_cover(&g, &cover),
                "seed {seed} produced a non-cover"
            );
        }
    }

    #[test]
    fn greedy_is_at_least_optimal() {
        for seed in 0..8 {
            let g = gen::gnp(12, 0.3, seed);
            let (greedy, _) = greedy_mvc(&g);
            let (opt, _) = brute_force_mvc(&g);
            assert!(
                greedy >= opt,
                "seed {seed}: greedy {greedy} below optimum {opt}"
            );
        }
    }

    #[test]
    fn greedy_exact_on_easy_shapes() {
        // Reductions alone solve paths, stars, and trees optimally.
        assert_eq!(greedy_mvc(&gen::path(9)).0, 4);
        assert_eq!(greedy_mvc(&gen::star(10)).0, 1);
        assert_eq!(greedy_mvc(&gen::paper_example()).0, 3);
    }

    #[test]
    fn greedy_on_clique() {
        // K_n: every step removes one vertex; cover of n-1 is optimal.
        assert_eq!(greedy_mvc(&gen::complete(7)).0, 6);
    }

    #[test]
    fn greedy_on_edgeless_is_empty() {
        let g = parvc_graph::CsrGraph::from_edges(6, &[]).unwrap();
        assert_eq!(greedy_mvc(&g), (0, vec![]));
    }

    #[test]
    fn two_approx_is_a_cover_within_factor_two() {
        for seed in 0..10 {
            let g = gen::gnp(14, 0.3, seed + 40);
            let cover = two_approx_mvc(&g);
            assert!(is_vertex_cover(&g, &cover), "seed {seed}");
            let (opt, _) = brute_force_mvc(&g);
            assert!(
                cover.len() as u32 <= 2 * opt,
                "seed {seed}: {} > 2 x {opt}",
                cover.len()
            );
            // Lower-bound side: |matching| = |cover|/2 <= opt.
            assert!(cover.len() as u32 / 2 <= opt);
        }
    }

    #[test]
    fn two_approx_tight_on_perfect_matchings() {
        // Disjoint edges: 2-approx takes both endpoints (2x optimal).
        let edges: Vec<(u32, u32)> = (0..8).map(|i| (2 * i, 2 * i + 1)).collect();
        let g = parvc_graph::CsrGraph::from_edges(16, &edges).unwrap();
        assert_eq!(two_approx_mvc(&g).len(), 16);
        assert_eq!(brute_force_mvc(&g).0, 8);
    }

    #[test]
    fn two_approx_on_regular_graphs() {
        // The hard family: no structure for greedy rules to exploit,
        // but the matching bound still brackets the optimum.
        let g = gen::random_regular(40, 3, 8);
        let approx = two_approx_mvc(&g).len() as u32;
        let exact = crate::Solver::builder()
            .algorithm(crate::Algorithm::Sequential)
            .build()
            .solve_mvc(&g)
            .size;
        assert!(approx / 2 <= exact && exact <= approx);
    }
}
