//! The greedy MVC approximation (§II-B).
//!
//! Runs on the CPU before every kernel launch, serving two roles:
//! it initializes the global `best` (Figure 1 line 1), and its size
//! bounds the search depth, sizing the pre-allocated per-block stacks
//! (§IV-E) — no branch ever covers more vertices than `best`.

use parvc_graph::{CsrGraph, VertexId};
use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::CostModel;

use crate::bound::SearchBound;
use crate::ops::Kernel;
use crate::scratch::BlockScratch;
use crate::TreeNode;

/// Greedy approximate minimum vertex cover: apply all reduction rules,
/// remove the max-degree vertex, repeat until edgeless. Returns the
/// cover size and the cover itself.
pub fn greedy_mvc(g: &CsrGraph) -> (u32, Vec<VertexId>) {
    let deadline = crate::shared::Deadline::new(None);
    greedy_mvc_bounded(g, &deadline)
}

/// [`greedy_mvc`] under a wall-clock budget. The greedy loop is
/// `O(best · |V|)`, which on `Scale::Massive` instances can exceed the
/// whole solve budget before the engine even launches; when `deadline`
/// expires mid-loop the residual graph is finished in linear time with
/// the endpoints of a maximal matching (`finish_with_matching`) — a
/// valid cover whose residual part stays within 2× of the residual
/// optimum, instead of the old "sweep every live vertex" fallback —
/// and the solve reports `timed_out` through the deadline's sticky
/// flag.
pub fn greedy_mvc_bounded(
    g: &CsrGraph,
    deadline: &crate::shared::Deadline,
) -> (u32, Vec<VertexId>) {
    let cost = CostModel::default();
    let kernel = Kernel::sequential(g, &cost);
    let mut counters = BlockCounters::new(u32::MAX);
    let mut scratch = BlockScratch::new();
    let mut node = TreeNode::root(g);
    // No `best` exists yet, so the high-degree rule is inert
    // (`u32::MAX` budget); degree-one and degree-two-triangle do fire.
    let bound = SearchBound::Mvc { best: u32::MAX };
    loop {
        if deadline.expired() {
            finish_with_matching(g, &mut node);
            break;
        }
        kernel.reduce(&mut node, bound, &mut scratch, &mut counters);
        if node.is_edgeless() {
            break;
        }
        let vmax = kernel
            .find_max_degree(&node, &mut counters)
            .expect("non-edgeless graph has vertices");
        kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, &mut counters);
    }
    (node.cover_size(), node.cover_vertices())
}

/// Greedy approximate minimum **weight** vertex cover: apply the
/// weight-sound reduction rules, then repeatedly remove the live
/// vertex with the best degree-per-weight ratio until edgeless.
/// Returns the cover weight and the cover itself — the seed for
/// [`SearchMode::WeightedMvc`](crate::engine::SearchMode).
pub fn greedy_weighted_mvc(g: &CsrGraph) -> (u64, Vec<VertexId>) {
    let deadline = crate::shared::Deadline::new(None);
    greedy_weighted_mvc_bounded(g, &deadline)
}

/// [`greedy_weighted_mvc`] under a wall-clock budget, with the same
/// expiry semantics as [`greedy_mvc_bounded`]: on deadline the
/// residual graph is covered by maximal-matching endpoints
/// (`finish_with_matching`) rather than by sweeping every live
/// vertex into the cover.
pub fn greedy_weighted_mvc_bounded(
    g: &CsrGraph,
    deadline: &crate::shared::Deadline,
) -> (u64, Vec<VertexId>) {
    let cost = CostModel::default();
    let kernel = Kernel::sequential(g, &cost);
    let mut counters = BlockCounters::new(u32::MAX);
    let mut scratch = BlockScratch::new();
    let mut node = TreeNode::root(g);
    // The inert weighted bound: reductions run with their weight gates,
    // the high-degree rule never fires.
    let bound = SearchBound::WeightedMvc { best: u64::MAX };
    loop {
        if deadline.expired() {
            finish_with_matching(g, &mut node);
            break;
        }
        kernel.reduce(&mut node, bound, &mut scratch, &mut counters);
        if node.is_edgeless() {
            break;
        }
        // Pick the live vertex maximizing d(v)/w(v) — covers the most
        // edges per weight unit (ties: smaller id, like the unweighted
        // max-degree pick). Cross-multiplied in u128 so huge weights
        // cannot overflow.
        let pick = (0..node.len())
            .filter(|&v| node.degree(v) > 0)
            .max_by(|&a, &b| {
                let ra = node.degree(a) as u128 * g.weight(b) as u128;
                let rb = node.degree(b) as u128 * g.weight(a) as u128;
                ra.cmp(&rb).then(b.cmp(&a))
            })
            .expect("non-edgeless graph has a live vertex");
        kernel.remove_vertex(&mut node, pick, Activity::RemoveMaxVertex, &mut counters);
    }
    (node.cover_weight(), node.cover_vertices())
}

/// Deadline-expiry fallback: cover the residual graph with the
/// endpoints of a greedy maximal matching of its live edges,
/// `O(|V| + |E|)`. Every live edge has a matched endpoint afterwards
/// (maximality), so the node ends edgeless and the cover verifies; the
/// residual part is at most 2× the residual optimum — the old fallback
/// ("take every positive-degree vertex") had no bound at all.
fn finish_with_matching(g: &CsrGraph, node: &mut TreeNode) {
    for u in g.vertices() {
        if node.degree(u) <= 0 {
            continue;
        }
        let Some(v) = node.live_neighbor(g, u) else {
            continue;
        };
        node.remove_into_cover(g, u);
        node.remove_into_cover(g, v);
    }
}

/// The classic maximal-matching 2-approximation (Gavril/Yannakakis):
/// both endpoints of every edge of a maximal matching. Guaranteed
/// within 2× of the optimum in linear time — the paper's §I cites this
/// approximation line of work; it also provides an independent sanity
/// band for the exact solvers (`opt ∈ [|cover|/2, |cover|]`).
///
/// **Cardinality only.** The guarantee is on the cover's *size*; on
/// weighted instances the cover *weight* can be unboundedly worse than
/// the optimum (a matched edge may drag in an arbitrarily heavy
/// endpoint the optimum avoids). Weighted callers want
/// [`parvc_graph::matching::primal_dual_cover`] (wrapped by
/// [`crate::approx::weighted_approx_cover`]), whose weight is provably
/// within 2× of the weighted optimum.
pub fn two_approx_mvc(g: &CsrGraph) -> Vec<VertexId> {
    let matching = parvc_graph::matching::greedy_maximal_matching(g);
    let mut cover = Vec::with_capacity(matching.len() * 2);
    for (u, v) in matching {
        cover.push(u);
        cover.push(v);
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_mvc;
    use crate::verify::is_vertex_cover;
    use parvc_graph::gen;

    #[test]
    fn greedy_returns_a_valid_cover() {
        for seed in 0..8 {
            let g = gen::gnp(40, 0.15, seed);
            let (size, cover) = greedy_mvc(&g);
            assert_eq!(size as usize, cover.len());
            assert!(
                is_vertex_cover(&g, &cover),
                "seed {seed} produced a non-cover"
            );
        }
    }

    #[test]
    fn greedy_is_at_least_optimal() {
        for seed in 0..8 {
            let g = gen::gnp(12, 0.3, seed);
            let (greedy, _) = greedy_mvc(&g);
            let (opt, _) = brute_force_mvc(&g);
            assert!(
                greedy >= opt,
                "seed {seed}: greedy {greedy} below optimum {opt}"
            );
        }
    }

    #[test]
    fn greedy_exact_on_easy_shapes() {
        // Reductions alone solve paths, stars, and trees optimally.
        assert_eq!(greedy_mvc(&gen::path(9)).0, 4);
        assert_eq!(greedy_mvc(&gen::star(10)).0, 1);
        assert_eq!(greedy_mvc(&gen::paper_example()).0, 3);
    }

    #[test]
    fn greedy_on_clique() {
        // K_n: every step removes one vertex; cover of n-1 is optimal.
        assert_eq!(greedy_mvc(&gen::complete(7)).0, 6);
    }

    #[test]
    fn greedy_on_edgeless_is_empty() {
        let g = parvc_graph::CsrGraph::from_edges(6, &[]).unwrap();
        assert_eq!(greedy_mvc(&g), (0, vec![]));
    }

    #[test]
    fn weighted_greedy_returns_valid_covers_above_the_optimum() {
        for seed in 0..6 {
            let g = gen::with_uniform_weights(gen::gnp(12, 0.3, seed), 10, seed);
            let (weight, cover) = greedy_weighted_mvc(&g);
            assert_eq!(weight, g.cover_weight(&cover));
            assert!(is_vertex_cover(&g, &cover), "seed {seed}");
            let (opt, _) = crate::brute::weighted_brute_force(&g);
            assert!(weight >= opt, "seed {seed}: greedy {weight} below {opt}");
        }
    }

    #[test]
    fn weighted_greedy_avoids_the_expensive_hub() {
        // Star with a costly hub: the unweighted greedy takes the hub
        // (weight 100); the weighted greedy must prefer the leaves.
        let g = gen::star(6).with_weights(vec![100, 1, 1, 1, 1, 1]).unwrap();
        let (weight, cover) = greedy_weighted_mvc(&g);
        assert!(is_vertex_cover(&g, &cover));
        assert_eq!(weight, 5, "five weight-1 leaves beat the hub");
        assert_eq!(
            greedy_mvc(&g).0,
            1,
            "cardinality greedy still takes the hub"
        );
    }

    #[test]
    fn weighted_greedy_matches_unweighted_on_unit_weights() {
        for seed in 0..6 {
            let g = gen::gnp(20, 0.2, seed + 60);
            let (size, cover) = greedy_mvc(&g);
            let unit = g.clone().with_weights(vec![1; 20]).unwrap();
            let (weight, wcover) = greedy_weighted_mvc(&unit);
            assert_eq!(weight, size as u64, "seed {seed}");
            assert_eq!(
                wcover, cover,
                "seed {seed}: unit weights must not change the pick"
            );
        }
    }

    #[test]
    fn two_approx_is_a_cover_within_factor_two() {
        for seed in 0..10 {
            let g = gen::gnp(14, 0.3, seed + 40);
            let cover = two_approx_mvc(&g);
            assert!(is_vertex_cover(&g, &cover), "seed {seed}");
            let (opt, _) = brute_force_mvc(&g);
            assert!(
                cover.len() as u32 <= 2 * opt,
                "seed {seed}: {} > 2 x {opt}",
                cover.len()
            );
            // Lower-bound side: |matching| = |cover|/2 <= opt.
            assert!(cover.len() as u32 / 2 <= opt);
        }
    }

    #[test]
    fn two_approx_tight_on_perfect_matchings() {
        // Disjoint edges: 2-approx takes both endpoints (2x optimal).
        let edges: Vec<(u32, u32)> = (0..8).map(|i| (2 * i, 2 * i + 1)).collect();
        let g = parvc_graph::CsrGraph::from_edges(16, &edges).unwrap();
        assert_eq!(two_approx_mvc(&g).len(), 16);
        assert_eq!(brute_force_mvc(&g).0, 8);
    }

    #[test]
    fn expired_deadline_yields_matching_endpoints_not_everything() {
        use std::time::Duration;
        // A pre-expired deadline: the old fallback swept all six star
        // vertices into the cover; the matching fallback takes the two
        // endpoints of the single matched edge.
        let g = gen::star(6);
        let deadline = crate::shared::Deadline::new(Some(Duration::ZERO));
        let (size, cover) = greedy_mvc_bounded(&g, &deadline);
        assert!(deadline.was_hit());
        assert!(is_vertex_cover(&g, &cover), "timed-out seed must verify");
        assert_eq!(size, 2, "one matched edge, two endpoints");

        let w = gen::star(6).with_weights(vec![100, 1, 1, 1, 1, 1]).unwrap();
        let deadline = crate::shared::Deadline::new(Some(Duration::ZERO));
        let (weight, cover) = greedy_weighted_mvc_bounded(&w, &deadline);
        assert!(is_vertex_cover(&w, &cover), "timed-out seed must verify");
        assert_eq!(weight, 101, "hub + one leaf, not all 105");
    }

    #[test]
    fn expired_deadline_stays_within_twice_the_optimum() {
        use std::time::Duration;
        for seed in 0..6 {
            let g = gen::gnp(14, 0.3, seed + 70);
            let deadline = crate::shared::Deadline::new(Some(Duration::ZERO));
            let (size, cover) = greedy_mvc_bounded(&g, &deadline);
            assert!(is_vertex_cover(&g, &cover), "seed {seed}");
            let (opt, _) = brute_force_mvc(&g);
            assert!(size <= 2 * opt, "seed {seed}: {size} > 2 x {opt}");
        }
    }

    #[test]
    fn two_approx_weight_is_unbounded_but_primal_dual_is_not() {
        // Satellite regression: a single edge with a huge-weight
        // endpoint. `two_approx_mvc` takes both endpoints (weight
        // 1_000_001 vs optimum 1 — the cardinality guarantee says
        // nothing about weight); the primal-dual cover stays in band.
        let g = parvc_graph::CsrGraph::from_edges(2, &[(0, 1)])
            .unwrap()
            .with_weights(vec![1_000_000, 1])
            .unwrap();
        let card = two_approx_mvc(&g);
        assert_eq!(g.cover_weight(&card), 1_000_001, "weight-blind by design");
        let (opt, _) = crate::brute::weighted_brute_force(&g);
        assert_eq!(opt, 1);
        let pd = parvc_graph::matching::primal_dual_cover(&g);
        assert_eq!(pd.cover, vec![1], "the cheap endpoint is tight first");
        assert!(pd.weight <= 2 * opt);
    }

    #[test]
    fn two_approx_on_regular_graphs() {
        // The hard family: no structure for greedy rules to exploit,
        // but the matching bound still brackets the optimum.
        let g = gen::random_regular(40, 3, 8);
        let approx = two_approx_mvc(&g).len() as u32;
        let exact = crate::Solver::builder()
            .algorithm(crate::Algorithm::Sequential)
            .build()
            .solve_mvc(&g)
            .size;
        assert!(approx / 2 <= exact && exact <= approx);
    }
}
