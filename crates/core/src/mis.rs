//! Maximum independent set via vertex cover (§VI).
//!
//! "MIS is equivalent to MVC since the complement of a minimum vertex
//! cover is a maximum independent set" — the complement being with
//! respect to the vertex set, not the edge set: `MIS(G) = V ∖ MVC(G)`.

use parvc_graph::CsrGraph;

use crate::stats::MisResult;
use crate::Solver;

impl Solver {
    /// Solves MAXIMUM INDEPENDENT SET on `g` by solving MVC and taking
    /// the complement vertex set.
    pub fn solve_mis(&self, g: &CsrGraph) -> MisResult {
        let mvc = self.solve_mvc(g);
        let mut in_cover = vec![false; g.num_vertices() as usize];
        for &v in &mvc.cover {
            in_cover[v as usize] = true;
        }
        let set: Vec<u32> = g.vertices().filter(|&v| !in_cover[v as usize]).collect();
        MisResult {
            size: g.num_vertices() - mvc.size,
            set,
            stats: mvc.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::verify::is_independent_set;
    use crate::{Algorithm, Solver};
    use parvc_graph::gen;

    #[test]
    fn mis_of_known_graphs() {
        let solver = Solver::builder().algorithm(Algorithm::Sequential).build();
        // Petersen: MVC 6 → MIS 4.
        let r = solver.solve_mis(&gen::petersen());
        assert_eq!(r.size, 4);
        assert!(is_independent_set(&gen::petersen(), &r.set));
        // C5: MVC 3 → MIS 2. K6: MIS 1. Star: MIS n-1.
        assert_eq!(solver.solve_mis(&gen::cycle(5)).size, 2);
        assert_eq!(solver.solve_mis(&gen::complete(6)).size, 1);
        assert_eq!(solver.solve_mis(&gen::star(9)).size, 8);
    }

    #[test]
    fn mis_plus_mvc_is_v() {
        let solver = Solver::builder()
            .algorithm(Algorithm::Hybrid)
            .grid_limit(Some(4))
            .build();
        for seed in 0..3 {
            let g = gen::gnp(14, 0.3, seed + 500);
            let mis = solver.solve_mis(&g);
            assert_eq!(mis.size as usize, mis.set.len());
            assert_eq!(mis.size + solver.solve_mvc(&g).size, 14);
            assert!(is_independent_set(&g, &mis.set));
        }
    }

    #[test]
    fn mis_independence_cross_checked_with_clique_in_complement() {
        // An independent set of G is a clique of complement(G).
        let g = gen::gnp(12, 0.4, 9);
        let comp = parvc_graph::ops::complement(&g);
        let solver = Solver::builder().algorithm(Algorithm::Sequential).build();
        let mis = solver.solve_mis(&g);
        for (i, &u) in mis.set.iter().enumerate() {
            for &v in &mis.set[i + 1..] {
                assert!(
                    comp.has_edge(u, v),
                    "MIS members {u},{v} not adjacent in complement"
                );
            }
        }
    }
}
