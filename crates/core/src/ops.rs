//! Block-cooperative graph operations with cost accounting (§IV-B).
//!
//! On the GPU every operation on the intermediate graph is executed
//! cooperatively by the block's threads: a reduction tree finds the
//! max-degree vertex, neighborhood updates are spread across threads.
//! [`Kernel`] bundles what those operations need — the immutable CSR
//! graph and the "hardware" context (cost model, block size, kernel
//! variant) — and charges model cycles to the right Figure 6 activity as
//! it goes.

use parvc_graph::{CsrGraph, VertexId};
use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::exec::{ParallelExecutor, SERIAL};
use parvc_simgpu::{CostModel, KernelVariant};

use crate::extensions::Extensions;

/// Execution context for one thread block: the shared original graph
/// plus the cost-model parameters of the launch.
#[derive(Clone, Copy)]
pub struct Kernel<'a> {
    /// The immutable original graph (single copy, all blocks).
    pub graph: &'a CsrGraph,
    /// Cycle prices.
    pub cost: &'a CostModel,
    /// Threads per block (`B` in `ceil(n/B)`).
    pub block_size: u32,
    /// Where the working node lives (shared vs global memory).
    pub variant: KernelVariant,
    /// Optional pruning/reduction extensions (off = paper-faithful).
    pub ext: Extensions,
    /// How intra-block flat passes actually execute. Purely a
    /// wall-clock knob: charges and results are executor-invariant
    /// (see `parvc_simgpu::exec`).
    pub exec: &'a dyn ParallelExecutor,
    /// Telemetry sink ([`parvc_obs::NOOP`] by default). Observation
    /// only: results, charges, and counters are sink-invariant.
    pub sink: &'a dyn parvc_obs::Sink,
    /// Wall-clock progress heartbeat, ticked once per tree node
    /// (`None` = off).
    pub progress: Option<&'a crate::progress::Heartbeat>,
}

impl<'a> Kernel<'a> {
    /// A kernel context for single-thread execution (the Sequential
    /// baseline): `B = 1`, working state in CPU memory (charged at the
    /// shared-memory rate; sequential results are reported in wall time,
    /// the cycles are informational).
    pub fn sequential(graph: &'a CsrGraph, cost: &'a CostModel) -> Self {
        Kernel {
            graph,
            cost,
            block_size: 1,
            variant: KernelVariant::SharedMem,
            ext: Extensions::NONE,
            exec: &SERIAL,
            sink: &parvc_obs::NOOP,
            progress: None,
        }
    }

    /// Finds the live vertex with maximum degree (smallest id wins
    /// ties), via a parallel reduction tree over the degree array.
    /// Returns `None` only for a zero-vertex graph.
    pub fn find_max_degree(
        &self,
        node: &crate::TreeNode,
        counters: &mut BlockCounters,
    ) -> Option<VertexId> {
        counters.charge(
            Activity::FindMaxDegree,
            self.cost
                .reduction_tree(node.len() as u64, self.block_size, self.variant),
        );
        let mut best: Option<(i32, VertexId)> = None;
        for v in 0..node.len() {
            let d = node.degree(v);
            if d < 0 {
                continue;
            }
            match best {
                Some((bd, _)) if bd >= d => {}
                _ => best = Some((d, v)),
            }
        }
        best.map(|(_, v)| v)
    }

    /// Removes a single vertex into the cover (Figure 4 lines 27–28 when
    /// branching; also the mechanism of the high-degree and degree-one
    /// rules). One thread writes the sentinel; the neighbors'
    /// decrements are distributed across the block.
    pub fn remove_vertex(
        &self,
        node: &mut crate::TreeNode,
        v: VertexId,
        activity: Activity,
        counters: &mut BlockCounters,
    ) {
        let d = node.remove_into_cover(self.graph, v);
        counters.charge(
            activity,
            self.cost
                .parallel_op(d as u64 + 1, self.block_size, self.variant)
                + self.cost.atomic_op,
        );
    }

    /// Removes all live neighbors of `v` into the cover (Figure 4 lines
    /// 21–22). Each neighbor is handled by a thread that walks the
    /// neighbor's own adjacency to decrement degrees, so the charged
    /// work is the sum of the removed vertices' original degrees.
    pub fn remove_neighbors(
        &self,
        node: &mut crate::TreeNode,
        v: VertexId,
        activity: Activity,
        counters: &mut BlockCounters,
    ) {
        let mut updates = 0u64;
        for i in 0..self.graph.neighbors(v).len() {
            let u = self.graph.neighbors(v)[i];
            if !node.is_removed(u) {
                updates += node.remove_into_cover(self.graph, u) as u64 + 1;
            }
        }
        counters.charge(
            activity,
            self.cost
                .parallel_op(updates, self.block_size, self.variant)
                + self.cost.atomic_op,
        );
    }

    /// Charges the cost of moving a node between the working area and a
    /// stack/worklist slot.
    pub fn charge_node_copy(
        &self,
        node_len: u32,
        activity: Activity,
        counters: &mut BlockCounters,
    ) {
        counters.charge(
            activity,
            self.cost.node_copy(node_len, self.block_size, self.variant),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeNode;
    use parvc_graph::gen;

    fn kernel<'a>(g: &'a CsrGraph, cost: &'a CostModel) -> Kernel<'a> {
        Kernel {
            block_size: 32,
            ..Kernel::sequential(g, cost)
        }
    }

    #[test]
    fn find_max_prefers_smallest_id_on_tie() {
        let g = gen::cycle(6); // all degree 2
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        assert_eq!(k.find_max_degree(&node, &mut c), Some(0));
        assert!(c.cycles(Activity::FindMaxDegree) > 0);
    }

    #[test]
    fn find_max_skips_removed() {
        let g = gen::star(4);
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let mut node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        k.remove_vertex(&mut node, 0, Activity::RemoveMaxVertex, &mut c);
        // Only leaves remain, all isolated now.
        let v = k.find_max_degree(&node, &mut c).unwrap();
        assert_ne!(v, 0);
        assert_eq!(node.degree(v), 0);
    }

    #[test]
    fn find_max_none_on_empty_graph() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        assert_eq!(k.find_max_degree(&node, &mut c), None);
    }

    #[test]
    fn remove_neighbors_covers_all_incident_edges() {
        let g = gen::paper_example();
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let mut node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        k.remove_neighbors(&mut node, 2, Activity::RemoveNeighbors, &mut c);
        // N(c) = {a, b, d, e}: all removed, graph edgeless, c isolated.
        assert_eq!(node.cover_size(), 4);
        assert!(node.is_edgeless());
        assert_eq!(node.degree(2), 0);
        node.check_consistency(&g).unwrap();
        assert!(c.cycles(Activity::RemoveNeighbors) > 0);
    }

    #[test]
    fn remove_neighbors_skips_already_removed() {
        let g = gen::path(4); // 0-1-2-3
        let cost = CostModel::default();
        let k = kernel(&g, &cost);
        let mut node = TreeNode::root(&g);
        let mut c = BlockCounters::new(0);
        k.remove_vertex(&mut node, 1, Activity::RemoveMaxVertex, &mut c);
        k.remove_neighbors(&mut node, 2, Activity::RemoveNeighbors, &mut c);
        // N(2) = {1 (already removed), 3}: only 3 joins.
        assert_eq!(node.cover_size(), 2);
        assert!(node.is_edgeless());
        node.check_consistency(&g).unwrap();
    }

    #[test]
    fn wider_blocks_charge_fewer_cycles() {
        let g = gen::complete(64);
        let cost = CostModel::default();
        let node = TreeNode::root(&g);
        let mut narrow = BlockCounters::new(0);
        let mut wide = BlockCounters::new(1);
        Kernel {
            block_size: 32,
            ..Kernel::sequential(&g, &cost)
        }
        .find_max_degree(&node, &mut narrow);
        Kernel {
            block_size: 512,
            ..Kernel::sequential(&g, &cost)
        }
        .find_max_degree(&node, &mut wide);
        assert!(
            narrow.cycles(Activity::FindMaxDegree) > wide.cycles(Activity::FindMaxDegree) / 2,
            "reduction-tree log term keeps wide blocks from being free"
        );
    }
}
