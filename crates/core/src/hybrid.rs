//! The Hybrid traversal — the paper's contribution (Figure 4, §IV-A).
//!
//! Every thread block traverses a sub-tree depth-first with its local
//! stack, **but** on each branching it first looks at the global
//! worklist: below the threshold, the remove-`N(vmax)` child is donated
//! there for any starving block to pick up; at or above it, the child
//! goes onto the local stack as usual. Blocks that run out of local work
//! pull a new sub-tree root from the worklist, and the §IV-C protocol
//! detects when the whole traversal is finished.
//!
//! The threshold is the whole trick: it caps the worklist population, so
//! the breadth-first explosion and the queue contention of a pure
//! worklist scheme never materialize, while still keeping *just enough*
//! shareable work around that no block sits idle.

use parvc_graph::{CsrGraph, VertexId};
use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::runtime::run_blocks;
use parvc_simgpu::{CostModel, DeviceSpec, LaunchConfig};
use parvc_worklist::{LocalStack, PopOutcome, Worklist};

use crate::extensions::Extensions;
use crate::ops::Kernel;
use crate::shared::{BoundKind, BoundSrc, Deadline, GlobalBest, PvcFound, RawParallel, RawParallelPvc};
use crate::TreeNode;

/// Hybrid tuning knobs. The paper sweeps worklist sizes of 128K–512K
/// entries and thresholds of 0.25–1.0× the size.
#[derive(Debug, Clone)]
pub struct HybridParams {
    /// Global worklist capacity, in tree-node entries.
    pub worklist_capacity: usize,
    /// Donation threshold, as a fraction of capacity: donate only while
    /// `numEntries < threshold_frac * capacity` (Figure 4 line 23).
    pub threshold_frac: f64,
    /// Starved-block poll sleep (§IV-C "sleep for some time").
    pub poll_sleep: std::time::Duration,
}

impl Default for HybridParams {
    fn default() -> Self {
        HybridParams {
            worklist_capacity: 1 << 14,
            threshold_frac: 0.75,
            poll_sleep: std::time::Duration::from_micros(50),
        }
    }
}

impl HybridParams {
    /// The absolute entry-count threshold.
    pub fn threshold_entries(&self) -> usize {
        ((self.worklist_capacity as f64) * self.threshold_frac).ceil() as usize
    }
}

/// Parallel MVC with the Hybrid scheme (Figure 4).
pub fn solve_mvc(
    g: &CsrGraph,
    device: &DeviceSpec,
    config: &LaunchConfig,
    cost: &CostModel,
    params: &HybridParams,
    initial: (u32, Vec<VertexId>),
    deadline: &Deadline,
    ext: Extensions,
) -> RawParallel {
    let best = GlobalBest::new(initial.0, initial.1);
    let depth_bound = initial.0 as usize + 2;
    let bound_src = BoundSrc { kind: BoundKind::Mvc(&best), deadline };
    let blocks = launch(g, device, config, cost, params, depth_bound, bound_src, ext);
    let (best_size, best_cover) = best.into_result();
    RawParallel { best_size, best_cover, blocks }
}

/// Parallel PVC with the Hybrid scheme.
pub fn solve_pvc(
    g: &CsrGraph,
    device: &DeviceSpec,
    config: &LaunchConfig,
    cost: &CostModel,
    params: &HybridParams,
    k: u32,
    deadline: &Deadline,
    ext: Extensions,
) -> RawParallelPvc {
    let found = PvcFound::new();
    let depth_bound = (k as usize).min(g.num_vertices() as usize) + 2;
    let bound_src = BoundSrc { kind: BoundKind::Pvc { k, found: &found }, deadline };
    let blocks = launch(g, device, config, cost, params, depth_bound, bound_src, ext);
    RawParallelPvc { cover: found.into_result(), blocks }
}

fn launch(
    g: &CsrGraph,
    device: &DeviceSpec,
    config: &LaunchConfig,
    cost: &CostModel,
    params: &HybridParams,
    depth_bound: usize,
    bound_src: BoundSrc<'_>,
    ext: Extensions,
) -> Vec<BlockCounters> {
    let mut worklist = Worklist::with_capacity(params.worklist_capacity);
    worklist.set_poll_sleep(params.poll_sleep);
    worklist.seed(TreeNode::root(g));
    let threshold = params.threshold_entries();

    run_blocks(device, config, |ctx, counters| {
        let kernel =
            Kernel { graph: g, cost, block_size: ctx.block_size, variant: config.variant, ext };
        block_main(&kernel, bound_src, &worklist, threshold, depth_bound, counters);
    })
}

/// One block's execution of the Figure 4 loop.
fn block_main(
    kernel: &Kernel<'_>,
    bound_src: BoundSrc<'_>,
    worklist: &Worklist<TreeNode>,
    threshold: usize,
    depth_bound: usize,
    counters: &mut BlockCounters,
) {
    let mut handle = worklist.handle();
    let mut stack: LocalStack<TreeNode> = LocalStack::with_depth_bound(depth_bound);
    let mut current: Option<TreeNode> = None;

    loop {
        // PVC found-flag / deadline check before taking new work
        // (§IV-A). Signal done so starving peers wake promptly.
        if bound_src.should_abort() {
            worklist.signal_done();
            counters.charge(Activity::Terminate, kernel.cost.atomic_op);
            break;
        }
        // Figure 4 lines 4–10: current child, else stack, else worklist.
        let mut node = match current.take() {
            Some(n) => n,
            None => match stack.pop() {
                Some(n) => {
                    kernel.charge_node_copy(n.len(), Activity::PopFromStack, counters);
                    n
                }
                None => {
                    let (outcome, pop_stats) = handle.pop_with_stats();
                    counters.charge(
                        Activity::RemoveFromWorklist,
                        pop_stats.attempts * kernel.cost.queue_op
                            + pop_stats.sleeps * kernel.cost.poll_sleep,
                    );
                    match outcome {
                        PopOutcome::Item(n) => {
                            counters.nodes_from_worklist += 1;
                            kernel.charge_node_copy(
                                n.len(),
                                Activity::RemoveFromWorklist,
                                counters,
                            );
                            n
                        }
                        PopOutcome::Done => {
                            counters.charge(Activity::Terminate, kernel.cost.queue_op);
                            break;
                        }
                    }
                }
            },
        };

        // Figure 4 line 11 onward: reduce, check, branch.
        counters.tree_nodes_visited += 1;
        kernel.reduce(&mut node, bound_src.bound(), counters);
        if kernel.prune(&node, bound_src.bound()) {
            continue;
        }
        let Some(vmax) = kernel.find_max_degree(&node, counters) else {
            if bound_src.on_solution(&node) {
                // PVC: end the search — wake starving peers too.
                worklist.signal_done();
                break;
            }
            continue;
        };
        if node.degree(vmax) == 0 {
            // New solution (Figure 4 lines 17–19).
            if bound_src.on_solution(&node) {
                worklist.signal_done();
                break;
            }
            continue;
        }

        // Branch (lines 20–29): build the remove-N(vmax) child …
        let mut left = node.clone();
        kernel.remove_neighbors(&mut left, vmax, Activity::RemoveNeighbors, counters);
        // … donate it if the worklist is hungry, else stack it …
        if handle.len_hint() >= threshold {
            kernel.charge_node_copy(left.len(), Activity::PushToStack, counters);
            push_local(&mut stack, left);
        } else {
            let len = left.len();
            match handle.add(left) {
                Ok(()) => {
                    counters.nodes_donated += 1;
                    kernel.charge_node_copy(len, Activity::AddToWorklist, counters);
                    counters.charge(Activity::AddToWorklist, kernel.cost.queue_op);
                }
                Err(back) => {
                    // Queue filled between the check and the add: fall
                    // back to the local stack (never drop work).
                    counters.donations_bounced += 1;
                    kernel.charge_node_copy(back.len(), Activity::PushToStack, counters);
                    push_local(&mut stack, back);
                }
            }
        }
        // … and continue in-place with the remove-vmax child.
        kernel.remove_vertex(&mut node, vmax, Activity::RemoveMaxVertex, counters);
        current = Some(node);
        counters.max_stack_depth = counters.max_stack_depth.max(stack.len() as u64);
    }
    counters.max_stack_depth = counters.max_stack_depth.max(stack.high_water() as u64);
}

fn push_local(stack: &mut LocalStack<TreeNode>, node: TreeNode) {
    stack
        .push(node)
        .unwrap_or_else(|_| panic!("stack depth bound violated (bound {})", stack.bound()));
}
