//! The Hybrid scheme — the paper's contribution (Figure 4, §IV-A) —
//! as a [`SchedulePolicy`].
//!
//! Every thread block traverses a sub-tree depth-first with its local
//! stack, **but** on each branching it first looks at the global
//! worklist: below the threshold, the remove-`N(vmax)` child is donated
//! there for any starving block to pick up; at or above it, the child
//! goes onto the local stack as usual. Blocks that run out of local work
//! pull a new sub-tree root from the worklist, and the §IV-C protocol
//! detects when the whole traversal is finished.
//!
//! The threshold is the whole trick: it caps the worklist population, so
//! the breadth-first explosion and the queue contention of a pure
//! worklist scheme never materialize, while still keeping *just enough*
//! shareable work around that no block sits idle.

use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::runtime::BlockCtx;
use parvc_worklist::{LocalStack, PopOutcome, WorkerHandle, Worklist};

use crate::engine::{ExitCause, PolicyFactory, SchedulePolicy};
use crate::ops::Kernel;
use crate::shared::BoundSrc;
use crate::TreeNode;

/// Hybrid tuning knobs. The paper sweeps worklist sizes of 128K–512K
/// entries and thresholds of 0.25–1.0× the size.
#[derive(Debug, Clone)]
pub struct HybridParams {
    /// Global worklist capacity, in tree-node entries.
    pub worklist_capacity: usize,
    /// Donation threshold, as a fraction of capacity: donate only while
    /// `numEntries < threshold_frac * capacity` (Figure 4 line 23).
    pub threshold_frac: f64,
    /// Starved-block poll sleep (§IV-C "sleep for some time").
    pub poll_sleep: std::time::Duration,
}

impl Default for HybridParams {
    fn default() -> Self {
        HybridParams {
            worklist_capacity: 1 << 14,
            threshold_frac: 0.75,
            poll_sleep: std::time::Duration::from_micros(50),
        }
    }
}

impl HybridParams {
    /// The absolute entry-count threshold.
    pub fn threshold_entries(&self) -> usize {
        ((self.worklist_capacity as f64) * self.threshold_frac).ceil() as usize
    }
}

/// Shared state: the §IV-C worklist plus the donation threshold.
pub struct HybridFactory {
    worklist: Worklist<TreeNode>,
    threshold: usize,
}

impl HybridFactory {
    /// A fresh factory (one per launch).
    pub fn new(params: &HybridParams) -> Self {
        let mut worklist = Worklist::with_capacity(params.worklist_capacity);
        worklist.set_poll_sleep(params.poll_sleep);
        HybridFactory {
            worklist,
            threshold: params.threshold_entries(),
        }
    }
}

impl PolicyFactory for HybridFactory {
    fn seed(&self, root: TreeNode) {
        self.worklist.seed(root);
    }

    fn block_policy<'s>(
        &'s self,
        _ctx: BlockCtx,
        depth_bound: usize,
    ) -> Box<dyn SchedulePolicy + 's> {
        Box::new(HybridPolicy {
            worklist: &self.worklist,
            handle: self.worklist.handle(),
            threshold: self.threshold,
            stack: LocalStack::with_depth_bound(depth_bound),
        })
    }
}

/// One block's view: local stack first, then the global worklist.
pub struct HybridPolicy<'a> {
    worklist: &'a Worklist<TreeNode>,
    handle: WorkerHandle<'a, TreeNode>,
    threshold: usize,
    stack: LocalStack<TreeNode>,
}

impl SchedulePolicy for HybridPolicy<'_> {
    fn next(
        &mut self,
        kernel: &Kernel<'_>,
        _bound: BoundSrc<'_>,
        counters: &mut BlockCounters,
    ) -> Option<TreeNode> {
        // Figure 4 lines 5–10: stack, else worklist (with the §IV-C
        // wait loop inside `pop_with_stats`).
        if let Some(n) = self.stack.pop() {
            kernel.charge_node_copy(n.len(), Activity::PopFromStack, counters);
            return Some(n);
        }
        let (outcome, pop_stats) = self.handle.pop_with_stats();
        counters.charge(
            Activity::RemoveFromWorklist,
            pop_stats.attempts * kernel.cost.queue_op + pop_stats.sleeps * kernel.cost.poll_sleep,
        );
        match outcome {
            PopOutcome::Item(n) => {
                counters.nodes_from_worklist += 1;
                kernel.charge_node_copy(n.len(), Activity::RemoveFromWorklist, counters);
                Some(n)
            }
            PopOutcome::Done => None,
        }
    }

    fn dispose(&mut self, child: TreeNode, kernel: &Kernel<'_>, counters: &mut BlockCounters) {
        // Figure 4 lines 20–29: donate while the worklist is hungry,
        // else keep the child on the local stack.
        if self.handle.len_hint() >= self.threshold {
            kernel.charge_node_copy(child.len(), Activity::PushToStack, counters);
            self.push_local(child, counters);
        } else {
            let len = child.len();
            match self.handle.add(child) {
                Ok(()) => {
                    counters.nodes_donated += 1;
                    kernel.charge_node_copy(len, Activity::AddToWorklist, counters);
                    counters.charge(Activity::AddToWorklist, kernel.cost.queue_op);
                }
                Err(back) => {
                    // Queue filled between the check and the add: fall
                    // back to the local stack (never drop work).
                    counters.donations_bounced += 1;
                    kernel.charge_node_copy(back.len(), Activity::PushToStack, counters);
                    self.push_local(back, counters);
                }
            }
        }
    }

    fn on_exit(&mut self, cause: ExitCause, kernel: &Kernel<'_>, counters: &mut BlockCounters) {
        match cause {
            // Deadline / PVC found-flag: wake starving peers promptly.
            ExitCause::Aborted => {
                self.worklist.signal_done();
                counters.charge(Activity::Terminate, kernel.cost.atomic_op);
            }
            // The §IV-C protocol already concluded the traversal.
            ExitCause::Exhausted => {
                counters.charge(Activity::Terminate, kernel.cost.queue_op);
            }
            // Our own PVC solution ends the search for everyone.
            ExitCause::SolutionFound => {
                self.worklist.signal_done();
            }
        }
        counters.max_stack_depth = counters.max_stack_depth.max(self.stack.high_water() as u64);
    }
}

impl HybridPolicy<'_> {
    fn push_local(&mut self, node: TreeNode, counters: &mut BlockCounters) {
        self.stack.push(node).unwrap_or_else(|_| {
            panic!("stack depth bound violated (bound {})", self.stack.bound())
        });
        counters.max_stack_depth = counters.max_stack_depth.max(self.stack.len() as u64);
    }
}
