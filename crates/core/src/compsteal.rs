//! The ComponentSteal scheme — work stealing with **whole components
//! as the unit of donated work** — as a [`SchedulePolicy`].
//!
//! The [`stealing`](crate::stealing) policy donates branched children:
//! a thief inherits one sub-tree of a graph every other block is also
//! chewing on. arXiv 2512.18334's observation is that a *component* of
//! a disconnected residual is the natural donation unit — it is a
//! complete, independent sub-problem with its own bound, so a steal
//! transfers a whole budgeted sub-search instead of a slice of a
//! shared one.
//!
//! Mechanically this policy is the steal-pool policy with a richer
//! work item: ordinary tree nodes *and* pending components. When the
//! engine detects a component-sum node (see [`crate::split`]), the
//! policy **adopts** it: the components are pushed onto the block's
//! own deque, where starving peers steal them front-first (the oldest
//! push; component order follows BFS discovery over vertex ids). Each
//! component is solved by the budgeted sub-search of
//! `split::solve_bounded`, with sibling budgets tightened by the
//! results already recorded on the shared `SplitJob`. Whoever
//! finishes a job's **last** component combines the sub-covers onto
//! the parent node and feeds the component-sum solution back into the
//! engine as its next "tree node", where the ordinary bound/solution
//! machinery takes over.
//!
//! Counter semantics mirror [`stealing`](crate::stealing): own-deque
//! traffic is stack activity, steals are worklist removes, and every
//! solved sub-search node counts toward the Figure 5 load metric.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use parvc_simgpu::counters::{Activity, BlockCounters};
use parvc_simgpu::runtime::BlockCtx;
use parvc_worklist::{StealHandle, StealOutcome, StealPool, StealSource};

use crate::connect::ConnPool;
use crate::engine::{ExitCause, PolicyFactory, SchedulePolicy};
use crate::ops::Kernel;
use crate::scratch::BlockScratch;
use crate::shared::BoundSrc;
use crate::split::{self, PendingSplit, SubInstance};
use crate::stealing::StealParams;
use crate::TreeNode;

/// One adopted component-sum node: the parent, its components, and the
/// cross-block accounting that reassembles the summed solution.
struct SplitJob {
    /// The node whose residual disconnected (its cover is the shared
    /// prefix of the combined solution).
    parent: TreeNode,
    /// The extracted components.
    comps: Vec<SubInstance>,
    /// `results[i]`: `None` = unsolved; `Some(None)` = the component
    /// cannot fit its budget (the whole job is pruned); `Some(Some(c))`
    /// = the component's optimal sub-cover.
    results: Mutex<Vec<Option<Option<Vec<u32>>>>>,
    /// Components not yet solved; the block that takes this to zero
    /// combines the results.
    outstanding: AtomicUsize,
    /// Nested-split depth available to the sub-searches.
    max_depth: u32,
}

/// A unit of stealable work: an ordinary tree node, or one component
/// of an adopted split.
enum CompTask {
    Node(TreeNode),
    Component { job: Arc<SplitJob>, index: usize },
}

/// Shared state: one deque of component-steal work items per block.
pub struct CompStealFactory {
    pool: StealPool<CompTask>,
}

impl CompStealFactory {
    /// A fresh factory for a launch of `workers` blocks (one per
    /// solve). `depth_hint` pre-sizes each deque (§IV-E).
    pub fn new(workers: usize, depth_hint: usize, params: &StealParams) -> Self {
        let mut pool = StealPool::new(workers, depth_hint);
        pool.set_poll_sleep(params.poll_sleep);
        CompStealFactory { pool }
    }
}

impl PolicyFactory for CompStealFactory {
    fn seed(&self, root: TreeNode) {
        self.pool.seed(0, CompTask::Node(root));
    }

    fn block_policy<'s>(
        &'s self,
        ctx: BlockCtx,
        _depth_bound: usize,
    ) -> Box<dyn SchedulePolicy + 's> {
        Box::new(CompStealPolicy {
            pool: &self.pool,
            handle: self.pool.handle(ctx.block_id as usize),
            conns: ConnPool::new(),
            scratch: BlockScratch::new(),
        })
    }
}

/// One block's view: its own deque plus its peers as steal targets.
pub struct CompStealPolicy<'a> {
    pool: &'a StealPool<CompTask>,
    handle: StealHandle<'a, CompTask>,
    /// Tracker-reuse pool for the per-component sub-searches this block
    /// runs: each solved component recycles the previous one's
    /// union-find allocations instead of growing fresh ones.
    conns: ConnPool,
    /// Phase scratch shared by every sub-search on this block.
    scratch: BlockScratch,
}

impl CompStealPolicy<'_> {
    /// Solves component `index` of `job` on this block and records the
    /// result. If that was the job's last outstanding component,
    /// returns the combined component-sum solution (or `None` when any
    /// component proved the node prunable).
    fn run_component(
        &mut self,
        job: &Arc<SplitJob>,
        index: usize,
        kernel: &Kernel<'_>,
        bound: BoundSrc<'_>,
        counters: &mut BlockCounters,
    ) -> Option<TreeNode> {
        let inst = &job.comps[index];
        let search = bound.bound();
        // The freshest budget (in the search's units — weight for
        // weighted traversals): the launch bound as of now, minus the
        // parent's cover cost, minus what the sibling components are
        // known to need (their exact optimum once solved, else their
        // matching lower bound). A sibling that already proved it
        // cannot fit dooms the whole job — no budget, skip the solve.
        let limit = {
            let results = job.results.lock();
            let doomed = results.iter().any(|r| matches!(r, Some(None)));
            if doomed {
                None
            } else {
                split::remaining_budget(search, search.node_cost(&job.parent)).map(
                    |mut remaining| {
                        for (j, r) in results.iter().enumerate() {
                            if j == index {
                                continue;
                            }
                            remaining -= match r {
                                Some(Some(cover)) => {
                                    if search.is_weighted() {
                                        job.comps[j].graph.cover_weight(cover) as i64
                                    } else {
                                        cover.len() as i64
                                    }
                                }
                                _ => job.comps[j].lower_bound as i64,
                            };
                        }
                        remaining
                    },
                )
            }
        };
        let outcome = match limit {
            Some(limit) if limit >= inst.lower_bound as i64 => {
                let sub_kernel = Kernel {
                    graph: &inst.graph,
                    ..*kernel
                };
                split::solve_bounded(
                    &sub_kernel,
                    inst.greedy.clone(),
                    limit as u64,
                    search.is_weighted(),
                    &mut || bound.should_abort(),
                    &mut self.scratch,
                    &mut self.conns,
                    counters,
                    job.max_depth,
                )
                .map(|(_, cover)| cover)
            }
            // Budget spent before this component even started: the
            // whole job is prunable.
            _ => None,
        };
        job.results.lock()[index] = Some(outcome);
        if job.outstanding.fetch_sub(1, Ordering::AcqRel) != 1 {
            return None;
        }
        // Last component done: combine S with every sub-cover into an
        // ordinary (edgeless) tree node and hand it to the engine.
        let results = job.results.lock();
        let mut combined = job.parent.clone();
        for (inst, r) in job.comps.iter().zip(results.iter()) {
            let Some(Some(cover)) = r else {
                // A sibling was pruned or never got a budget — the
                // component-sum node cannot beat the bound.
                return None;
            };
            for &v in cover {
                combined.remove_into_cover(kernel.graph, inst.old_ids[v as usize]);
            }
        }
        kernel.charge_node_copy(combined.len(), Activity::ComponentSplit, counters);
        Some(combined)
    }
}

impl SchedulePolicy for CompStealPolicy<'_> {
    fn next(
        &mut self,
        kernel: &Kernel<'_>,
        bound: BoundSrc<'_>,
        counters: &mut BlockCounters,
    ) -> Option<TreeNode> {
        loop {
            let (outcome, stats) = self.handle.pop_with_stats();
            let task = match outcome {
                StealOutcome::Item(task, StealSource::Own) => {
                    counters.charge(
                        Activity::PopFromStack,
                        stats.sleeps * kernel.cost.poll_sleep,
                    );
                    task
                }
                StealOutcome::Item(task, StealSource::Stolen { victim }) => {
                    counters.charge(
                        Activity::RemoveFromWorklist,
                        stats.attempts * kernel.cost.queue_op
                            + stats.sleeps * kernel.cost.poll_sleep,
                    );
                    counters.nodes_from_worklist += 1;
                    counters.record_steal(victim as u32);
                    if kernel.sink.enabled() {
                        parvc_obs::instant(
                            kernel.sink,
                            "steal",
                            "steal",
                            counters.block_id + 1,
                            victim as u64,
                        );
                        kernel.sink.counter("steal.steals", 1);
                    }
                    task
                }
                StealOutcome::Done => {
                    counters.charge(
                        Activity::RemoveFromWorklist,
                        stats.attempts * kernel.cost.queue_op
                            + stats.sleeps * kernel.cost.poll_sleep,
                    );
                    return None;
                }
            };
            match task {
                CompTask::Node(n) => {
                    kernel.charge_node_copy(n.len(), Activity::PopFromStack, counters);
                    return Some(n);
                }
                CompTask::Component { job, index } => {
                    if let Some(combined) = self.run_component(&job, index, kernel, bound, counters)
                    {
                        return Some(combined);
                    }
                    // Sibling components still outstanding (or the job
                    // pruned): keep draining the pool.
                }
            }
        }
    }

    fn dispose(&mut self, child: TreeNode, kernel: &Kernel<'_>, counters: &mut BlockCounters) {
        kernel.charge_node_copy(child.len(), Activity::PushToStack, counters);
        counters.charge(Activity::PushToStack, kernel.cost.atomic_op);
        let depth = self.handle.push(CompTask::Node(child));
        counters.max_stack_depth = counters.max_stack_depth.max(depth as u64);
    }

    fn adopt_split(
        &mut self,
        split: PendingSplit,
        kernel: &Kernel<'_>,
        counters: &mut BlockCounters,
    ) -> Result<(), PendingSplit> {
        let n = split.comps.len();
        let job = Arc::new(SplitJob {
            parent: split.parent,
            comps: split.comps,
            results: Mutex::new(vec![None; n]),
            outstanding: AtomicUsize::new(n),
            max_depth: kernel.ext.component_branching.map_or(0, |p| p.max_depth),
        });
        for index in 0..n {
            // Donating a component costs one queue push; the node data
            // itself stays shared behind the job handle.
            counters.charge(Activity::ComponentSplit, kernel.cost.queue_op);
            counters.nodes_donated += 1;
            let depth = self.handle.push(CompTask::Component {
                job: Arc::clone(&job),
                index,
            });
            counters.max_stack_depth = counters.max_stack_depth.max(depth as u64);
        }
        Ok(())
    }

    fn on_exit(&mut self, cause: ExitCause, kernel: &Kernel<'_>, counters: &mut BlockCounters) {
        match cause {
            ExitCause::Aborted => {
                self.pool.signal_done();
                counters.charge(Activity::Terminate, kernel.cost.atomic_op);
            }
            ExitCause::Exhausted => {
                counters.charge(Activity::Terminate, kernel.cost.queue_op);
            }
            ExitCause::SolutionFound => {
                self.pool.signal_done();
            }
        }
    }
}
