//! `serve-load` — the CI gate for the serving tier.
//!
//! Replays a **deterministic** mixed workload (exact solves, weighted
//! solves, approx certificates, incremental re-solves, repeated
//! instances) against an in-process [`Server`] and reports request
//! latency (p50/p99), throughput, cache hit rate, and shed behavior.
//! A second pass runs with the admission high-water mark forced to 0,
//! so every exact solve is shed: each shed answer must be a valid
//! cover with `cost ≤ 2 × lower_bound` (the certificate the operator
//! is promised under overload) — asserted inline against the
//! re-generated instance.
//!
//! The JSON report is compared against the checked-in baseline
//! `bench/baselines/serve.json`:
//!
//! * a changed optimum on any check fails (correctness, not perf);
//! * changed cache hit/miss totals or shed counts fail — the workload
//!   is deterministic, so these are exact;
//! * latency and throughput are informational only (they vary by
//!   machine) and are never gated.
//!
//! ```text
//! cargo run --release -p parvc-serve --bin serve_load -- \
//!     --json serve-report.json --baseline bench/baselines/serve.json
//! ```

use std::time::Instant;

use parvc_bench::json::{obj, parse, Value};
use parvc_graph::gen::spec;
use parvc_serve::{ServeConfig, Server};

/// The replayed request stream: `rounds` passes over three instances
/// (`a` and `w` share structure, `w` carries degree weights; `b` takes
/// an edit stream), with repeats designed to hit the cache and a
/// certificate request mixed in. Every seed is pinned.
fn workload(rounds: u64) -> Vec<String> {
    let mut lines = vec![
        "LOAD a gnp:60:0.08@5".to_string(),
        "LOAD b components:90:10:0.45@3".to_string(),
        "LOAD w gnp:60:0.08@5:w=degree".to_string(),
    ];
    for round in 0..rounds {
        lines.push("SOLVE a".to_string());
        lines.push("SOLVE b".to_string());
        lines.push("SOLVE w --weighted".to_string());
        lines.push("SOLVE a --approx".to_string());
        if round % 2 == 1 {
            // Advance b and re-ask: the re-solve primes the cache for
            // the post-edit graph, so the SOLVE right after must hit.
            lines.push(format!("RESOLVE b --edits gen:3@{round}"));
            lines.push("SOLVE b".to_string());
        }
    }
    lines.push("STATS".to_string());
    lines
}

fn num(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::num)
        .unwrap_or_else(|| panic!("response missing numeric field '{key}': {v:?}"))
}

fn is_true(v: &Value, key: &str) -> bool {
    matches!(v.get(key), Some(Value::Bool(true)))
}

fn main() {
    let mut json_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut rounds = 6u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} requires a {what} argument"))
        };
        match flag.as_str() {
            "--json" => json_out = Some(value("path")),
            "--baseline" => baseline = Some(value("path")),
            "--rounds" => {
                rounds = value("count")
                    .parse()
                    .unwrap_or_else(|e| panic!("--rounds: {e}"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --json <report path>  --baseline <baseline path>  --rounds <count>"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }

    // ---- phase 1: mixed workload, cache on, no overload ----------
    let server = Server::new(ServeConfig::default());
    let lines = workload(rounds);
    let mut latencies_us: Vec<u64> = Vec::with_capacity(lines.len());
    let mut last_cost = std::collections::BTreeMap::new();
    let started = Instant::now();
    for line in &lines {
        let t0 = Instant::now();
        let response = server
            .handle(line)
            .unwrap_or_else(|| panic!("no response for '{line}'"));
        latencies_us.push(t0.elapsed().as_micros() as u64);
        let doc = parse(&response).unwrap_or_else(|e| panic!("bad response for '{line}': {e}"));
        assert!(is_true(&doc, "ok"), "request '{line}' failed: {response}");
        if let Some(name) = line.strip_prefix("SOLVE ") {
            let name = name.split_whitespace().next().unwrap();
            if !line.contains("--approx") {
                last_cost.insert(name.to_string(), num(&doc, "cost"));
            }
        }
    }
    let elapsed = started.elapsed();
    let stats = parse(&server.handle("STATS").unwrap()).expect("STATS parses");
    let cache = stats.get("cache").expect("STATS has a cache object");
    let (hits, misses) = (num(cache, "hits"), num(cache, "misses"));
    assert!(
        hits > 0,
        "deterministic workload with repeats produced zero cache hits"
    );
    assert_eq!(
        num(&stats, "sheds"),
        0,
        "single-threaded workload under default high-water shed requests"
    );

    latencies_us.sort_unstable();
    let pct = |p: usize| latencies_us[(latencies_us.len() - 1) * p / 100];
    let throughput = (lines.len() as f64 / elapsed.as_secs_f64()) as u64;
    eprintln!(
        "[serve-load] {} requests in {:?}: p50 {}us p99 {}us, ~{throughput} req/s, \
         cache {hits} hits / {misses} misses",
        lines.len(),
        elapsed,
        pct(50),
        pct(99),
    );

    // ---- phase 2: forced overload, every exact solve shed --------
    let shed_server = Server::new(ServeConfig {
        high_water: 0,
        ..ServeConfig::default()
    });
    let shed_spec = "gnp:50:0.1@11";
    let shed_graph = spec::parse(shed_spec)
        .expect("shed spec parses")
        .expect("shed spec is a generator");
    assert!(is_true(
        &parse(&shed_server.handle(&format!("LOAD s {shed_spec}")).unwrap()).unwrap(),
        "ok"
    ));
    let mut sheds = 0u64;
    for _ in 0..3 {
        let doc = parse(&shed_server.handle("SOLVE s").unwrap()).expect("shed response parses");
        assert!(is_true(&doc, "degraded"), "overloaded solve was not shed");
        assert!(is_true(&doc, "certified"));
        let (cost, lb) = (num(&doc, "cost"), num(&doc, "lower_bound"));
        assert!(
            cost <= 2 * lb,
            "shed certificate broke its bound: cost {cost} > 2 x {lb}"
        );
        let cover: Vec<u32> = doc
            .get("cover")
            .and_then(Value::arr)
            .expect("shed response carries the cover")
            .iter()
            .filter_map(Value::num)
            .map(|v| v as u32)
            .collect();
        assert!(
            parvc_core::is_vertex_cover(&shed_graph, &cover),
            "shed certificate is not a vertex cover"
        );
        sheds += 1;
    }
    let shed_stats = parse(&shed_server.handle("STATS").unwrap()).unwrap();
    assert_eq!(num(&shed_stats, "sheds"), sheds, "STATS undercounts sheds");
    eprintln!("[serve-load] {sheds} forced sheds, every certificate within 2x and valid");

    // ---- report --------------------------------------------------
    let checks: Vec<Value> = last_cost
        .iter()
        .map(|(name, cost)| {
            obj(vec![
                ("name", Value::Str(name.clone())),
                ("cost", Value::Num(*cost)),
            ])
        })
        .collect();
    let report = obj(vec![
        ("schema", Value::Num(1)),
        ("bench", Value::Str("serve-load".into())),
        ("requests", Value::Num(lines.len() as u64 + 1)),
        ("cache_hits", Value::Num(hits)),
        ("cache_misses", Value::Num(misses)),
        ("sheds", Value::Num(sheds)),
        ("checks", Value::Arr(checks)),
        (
            "latency_us",
            obj(vec![
                ("p50", Value::Num(pct(50))),
                ("p99", Value::Num(pct(99))),
            ]),
        ),
        ("throughput_rps", Value::Num(throughput)),
    ]);
    let text = report.to_pretty();
    print!("{text}");
    if let Some(path) = &json_out {
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[serve-load] report written to {path}");
    }
    if let Some(path) = &baseline {
        let base_text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let base = parse(&base_text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
        let regressions = compare(&base, &report);
        if regressions > 0 {
            eprintln!("[serve-load] FAILED: {regressions} regression(s) against {path}");
            std::process::exit(1);
        }
        eprintln!("[serve-load] ok: no regressions against {path}");
    }
}

/// Compares the deterministic fields only: cache totals and shed count
/// must match exactly (the workload is pinned), and every check's
/// optimum must be unchanged (correctness). Latency and throughput are
/// machine-dependent and never gated.
fn compare(base: &Value, current: &Value) -> u32 {
    let mut regressions = 0u32;
    for key in ["requests", "cache_hits", "cache_misses", "sheds"] {
        let (was, now) = (num(base, key), num(current, key));
        if was != now {
            eprintln!("[serve-load] REGRESSION: {key} changed {was} -> {now} (deterministic!)");
            regressions += 1;
        }
    }
    let find = |doc: &Value, name: &str| -> Option<u64> {
        doc.get("checks")?
            .arr()?
            .iter()
            .find(|c| c.get("name").and_then(Value::str) == Some(name))
            .map(|c| num(c, "cost"))
    };
    for check in base
        .get("checks")
        .and_then(Value::arr)
        .expect("baseline has checks")
    {
        let name = check
            .get("name")
            .and_then(Value::str)
            .expect("baseline check has a name");
        match find(current, name) {
            None => {
                eprintln!("[serve-load] REGRESSION {name}: check missing from the report");
                regressions += 1;
            }
            Some(now) => {
                let was = num(check, "cost");
                if was != now {
                    eprintln!(
                        "[serve-load] REGRESSION {name}: optimum changed {was} -> {now} \
                         (correctness!)"
                    );
                    regressions += 1;
                }
            }
        }
    }
    regressions
}
