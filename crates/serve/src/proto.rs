//! The `parvc serve` line protocol: request grammar and responses.
//!
//! One request is one line of UTF-8 text: a verb, then
//! whitespace-separated operands (no operand may contain whitespace).
//! One response is exactly one line of JSON (the serde-free subset in
//! `parvc_bench::json`, written compactly): `{"ok":true,...}` on
//! success, `{"ok":false,"error":"..."}` on failure. The full
//! protocol reference lives in `docs/serve.md`, whose verb table is
//! pinned against [`VERBS`] by a test — extend both together.

use std::collections::BTreeMap;

use parvc_bench::json::{obj, Value};

/// One protocol verb: the row rendered into `docs/serve.md`.
#[derive(Debug, Clone, Copy)]
pub struct VerbHelp {
    /// The verb keyword, uppercase.
    pub name: &'static str,
    /// Usage line: the verb with its operands.
    pub usage: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every verb the server accepts, in documentation order. The docs
/// verb table is generated from this array and pinned by test, so the
/// protocol reference cannot drift from the implementation.
pub const VERBS: &[VerbHelp] = &[
    VerbHelp {
        name: "LOAD",
        usage: "LOAD <name> <dimacs-file|gen-spec>",
        summary: "Register an instance under a name (a graph file or a generator spec)",
    },
    VerbHelp {
        name: "SOLVE",
        usage: "SOLVE <name> [--weighted] [--k <n>] [--deadline <secs>] [--seed <greedy|approx>] [--approx] [--no-cache]",
        summary: "Solve the named instance exactly (cache-backed), or certificate-only with --approx",
    },
    VerbHelp {
        name: "RESOLVE",
        usage: "RESOLVE <name> --edits <inline-ops|gen-spec> [--weighted]",
        summary: "Apply an edit batch through the instance's incremental session and re-solve",
    },
    VerbHelp {
        name: "STATS",
        usage: "STATS",
        summary: "Report instances, cache hits/misses/evictions, sheds, and merged solver counters",
    },
    VerbHelp {
        name: "EVICT",
        usage: "EVICT <name>|--cache",
        summary: "Drop a named instance (and its session), or clear the result cache",
    },
];

/// The `docs/serve.md` verb table, generated from [`VERBS`]. The doc
/// must contain this text verbatim (the pin test checks `contains`),
/// mirroring how `docs/cli.md` pins the CLI help.
pub fn verb_table_markdown() -> String {
    let mut out = String::from("| Verb | Usage | Summary |\n|---|---|---|\n");
    for v in VERBS {
        out.push_str(&format!(
            "| `{}` | `{}` | {} |\n",
            v.name, v.usage, v.summary
        ));
    }
    out
}

/// Per-request solve options (`SOLVE` and `RESOLVE` flags).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveFlags {
    /// Minimize total vertex weight instead of cardinality.
    pub weighted: bool,
    /// Parameterized question: is there a cover of size ≤ k?
    /// (Cardinality only; never cached.)
    pub k: Option<u32>,
    /// Per-request wall-clock budget in seconds, riding
    /// [`Solver::with_deadline`](parvc_core::Solver::with_deadline).
    pub deadline_secs: Option<f64>,
    /// Seed the exact search with the bounded 2-approximation instead
    /// of the greedy cover.
    pub seed_approx: bool,
    /// Answer with the 2× certificate only — no exact search at all
    /// (the same answer shape overload shedding produces).
    pub approx_only: bool,
    /// Bypass the result cache for this request (no lookup, no fill).
    pub no_cache: bool,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `LOAD <name> <dimacs-file|gen-spec>`
    Load {
        /// Registry name.
        name: String,
        /// File path or generator spec.
        instance: String,
    },
    /// `SOLVE <name> [flags]`
    Solve {
        /// Registry name.
        name: String,
        /// Request options.
        flags: SolveFlags,
    },
    /// `RESOLVE <name> --edits <spec> [--weighted]`
    Resolve {
        /// Registry name.
        name: String,
        /// Edit spec: inline ops or `gen:<ops>[:<frac>][@seed]`.
        edits: String,
        /// Request options (only `weighted` applies).
        flags: SolveFlags,
    },
    /// `STATS`
    Stats,
    /// `EVICT <name>` — drop one instance.
    EvictInstance {
        /// Registry name.
        name: String,
    },
    /// `EVICT --cache` — clear the result cache.
    EvictCache,
}

/// Parses one request line. Blank lines and `#` comments parse to
/// `None` (no response is sent). Errors describe the offending token.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().expect("non-empty line has a first token");
    let rest: Vec<&str> = tokens.collect();
    let req = match verb {
        "LOAD" => match rest.as_slice() {
            [name, instance] => Request::Load {
                name: (*name).to_string(),
                instance: (*instance).to_string(),
            },
            _ => return Err("usage: LOAD <name> <dimacs-file|gen-spec>".into()),
        },
        "SOLVE" => {
            let [name, flag_tokens @ ..] = rest.as_slice() else {
                return Err("usage: SOLVE <name> [flags]".into());
            };
            Request::Solve {
                name: (*name).to_string(),
                flags: parse_solve_flags(flag_tokens)?,
            }
        }
        "RESOLVE" => {
            let [name, flag_tokens @ ..] = rest.as_slice() else {
                return Err("usage: RESOLVE <name> --edits <spec> [--weighted]".into());
            };
            let mut edits = None;
            let mut passthrough = Vec::new();
            let mut it = flag_tokens.iter();
            while let Some(&tok) = it.next() {
                if tok == "--edits" {
                    edits = Some(
                        it.next()
                            .ok_or_else(|| "--edits needs a value".to_string())?
                            .to_string(),
                    );
                } else {
                    passthrough.push(tok);
                }
            }
            let flags = parse_solve_flags(&passthrough)?;
            if flags.k.is_some() || flags.approx_only {
                return Err("RESOLVE supports --weighted only (no --k/--approx)".into());
            }
            Request::Resolve {
                name: (*name).to_string(),
                edits: edits.ok_or_else(|| "RESOLVE requires --edits <spec>".to_string())?,
                flags,
            }
        }
        "STATS" => {
            if !rest.is_empty() {
                return Err("STATS takes no operands".into());
            }
            Request::Stats
        }
        "EVICT" => match rest.as_slice() {
            ["--cache"] => Request::EvictCache,
            [name] if !name.starts_with("--") => Request::EvictInstance {
                name: (*name).to_string(),
            },
            _ => return Err("usage: EVICT <name>|--cache".into()),
        },
        other => {
            return Err(format!(
                "unknown verb '{other}' (LOAD|SOLVE|RESOLVE|STATS|EVICT)"
            ))
        }
    };
    Ok(Some(req))
}

fn parse_solve_flags(tokens: &[&str]) -> Result<SolveFlags, String> {
    let mut flags = SolveFlags::default();
    let mut it = tokens.iter();
    while let Some(&tok) = it.next() {
        match tok {
            "--weighted" => flags.weighted = true,
            "--approx" => flags.approx_only = true,
            "--no-cache" => flags.no_cache = true,
            "--k" => {
                let v = it.next().ok_or_else(|| "--k needs a value".to_string())?;
                flags.k = Some(v.parse().map_err(|_| format!("bad --k value '{v}'"))?);
            }
            "--deadline" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--deadline needs a value".to_string())?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --deadline value '{v}'"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(format!("--deadline must be positive, got '{v}'"));
                }
                flags.deadline_secs = Some(secs);
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--seed needs a value".to_string())?;
                match *v {
                    "greedy" => flags.seed_approx = false,
                    "approx" => flags.seed_approx = true,
                    other => return Err(format!("bad --seed '{other}' (greedy|approx)")),
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if flags.k.is_some() && flags.weighted {
        return Err("--k is a cardinality question; drop --weighted".into());
    }
    Ok(flags)
}

/// An error response line: `{"error":"...","ok":false}`.
pub fn err_line(message: &str) -> String {
    obj(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::Str(sanitize(message))),
    ])
    .to_line()
}

/// A success response line from `fields`, with `"ok":true` and the
/// verb tag added.
pub fn ok_line(verb: &str, fields: Vec<(&str, Value)>) -> String {
    let mut map: BTreeMap<String, Value> = fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    map.insert("ok".into(), Value::Bool(true));
    map.insert("verb".into(), Value::Str(verb.to_string()));
    Value::Obj(map).to_line()
}

/// Makes arbitrary text safe for the escape-free JSON writer: quotes,
/// backslashes, and control characters become `'`/`/`/spaces.
pub fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '"' => '\'',
            '\\' => '/',
            c if c.is_control() => ' ',
            c => c,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_request("LOAD g1 gnp:40:0.1@7").unwrap(),
            Some(Request::Load {
                name: "g1".into(),
                instance: "gnp:40:0.1@7".into()
            })
        );
        assert_eq!(
            parse_request("SOLVE g1 --weighted --deadline 2.5 --seed approx").unwrap(),
            Some(Request::Solve {
                name: "g1".into(),
                flags: SolveFlags {
                    weighted: true,
                    deadline_secs: Some(2.5),
                    seed_approx: true,
                    ..Default::default()
                }
            })
        );
        assert_eq!(
            parse_request("RESOLVE g1 --edits gen:8@3 --weighted").unwrap(),
            Some(Request::Resolve {
                name: "g1".into(),
                edits: "gen:8@3".into(),
                flags: SolveFlags {
                    weighted: true,
                    ..Default::default()
                }
            })
        );
        assert_eq!(parse_request("STATS").unwrap(), Some(Request::Stats));
        assert_eq!(
            parse_request("EVICT g1").unwrap(),
            Some(Request::EvictInstance { name: "g1".into() })
        );
        assert_eq!(
            parse_request("EVICT --cache").unwrap(),
            Some(Request::EvictCache)
        );
    }

    #[test]
    fn blank_and_comment_lines_are_silent() {
        assert_eq!(parse_request("").unwrap(), None);
        assert_eq!(parse_request("   ").unwrap(), None);
        assert_eq!(parse_request("# a comment").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("FROB g1")
            .unwrap_err()
            .contains("unknown verb"));
        assert!(parse_request("LOAD g1").unwrap_err().contains("usage"));
        assert!(parse_request("SOLVE").unwrap_err().contains("usage"));
        assert!(parse_request("SOLVE g1 --k").unwrap_err().contains("--k"));
        assert!(parse_request("SOLVE g1 --k 3 --weighted")
            .unwrap_err()
            .contains("cardinality"));
        assert!(parse_request("SOLVE g1 --deadline -1")
            .unwrap_err()
            .contains("positive"));
        assert!(parse_request("SOLVE g1 --seed fast")
            .unwrap_err()
            .contains("--seed"));
        assert!(parse_request("SOLVE g1 --frobnicate")
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_request("RESOLVE g1").unwrap_err().contains("--edits"));
        assert!(parse_request("RESOLVE g1 --edits x --approx")
            .unwrap_err()
            .contains("RESOLVE"));
        assert!(parse_request("STATS now")
            .unwrap_err()
            .contains("no operands"));
        assert!(parse_request("EVICT").unwrap_err().contains("usage"));
        assert!(parse_request("EVICT --everything")
            .unwrap_err()
            .contains("usage"));
    }

    #[test]
    fn verb_table_lists_every_verb_once() {
        let table = verb_table_markdown();
        for v in VERBS {
            assert_eq!(table.matches(&format!("| `{}` |", v.name)).count(), 1);
        }
        assert_eq!(table.lines().count(), 2 + VERBS.len());
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let ok = ok_line("solve", vec![("size", Value::Num(3))]);
        assert!(ok.contains("\"ok\":true") && ok.contains("\"verb\":\"solve\""));
        let err = err_line("bad \"quoted\"\nthing");
        assert!(!err.contains('\n') && !err.contains('"') || !err.contains("\\"));
        assert!(parvc_bench::json::parse(&err).is_ok());
        assert!(parvc_bench::json::parse(&ok).is_ok());
    }
}
