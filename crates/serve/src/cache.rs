//! The keyed kernel + solution cache behind `parvc serve`.
//!
//! Repeat traffic is the serving tier's common case: the same instance
//! arrives again (same file, same generator spec, or the same graph
//! reached by an edit stream) and the exact optimum is already known.
//! The cache keys on **instance content**, not on how the instance was
//! named: [`CsrGraph::content_hash`] digests the canonical CSR arrays,
//! so `LOAD a graphs/x.dimacs` and `LOAD b gnp:200:0.05@7` share one
//! entry whenever they describe the same graph. The objective is part
//! of the key — a cardinality optimum is not a weighted optimum — so a
//! key is `(content hash, objective)`.
//!
//! Eviction is LRU over a fixed entry capacity. The cache persists to
//! one JSON file (the same serde-free subset the bench baselines use)
//! and reloads on startup, so a restarted server answers yesterday's
//! traffic from disk. Entries store the cover, its objective value,
//! and the tree-node count the original miss paid — the value the
//! operator sees amortized away on every subsequent hit.
//!
//! [`CsrGraph::content_hash`]: parvc_graph::CsrGraph::content_hash

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

use parvc_bench::json::{self, obj, Value};

/// The objective a cached cover optimizes. Cardinality and weighted
/// optima for the same structure are distinct cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Objective {
    /// Minimum cardinality (plain MVC).
    Cardinality,
    /// Minimum total vertex weight.
    Weighted,
}

impl Objective {
    fn tag(self) -> &'static str {
        match self {
            Objective::Cardinality => "mvc",
            Objective::Weighted => "wmvc",
        }
    }
}

/// A cache key: instance content hash plus objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`CsrGraph::content_hash`](parvc_graph::CsrGraph::content_hash)
    /// of the instance.
    pub hash: u64,
    /// The objective the cover optimizes.
    pub objective: Objective,
}

impl CacheKey {
    /// The key's stable string form, used in the persistence file.
    pub fn to_token(self) -> String {
        format!("{:016x}:{}", self.hash, self.objective.tag())
    }

    fn parse(token: &str) -> Option<CacheKey> {
        let (hash, tag) = token.split_once(':')?;
        let hash = u64::from_str_radix(hash, 16).ok()?;
        let objective = match tag {
            "mvc" => Objective::Cardinality,
            "wmvc" => Objective::Weighted,
            _ => return None,
        };
        Some(CacheKey { hash, objective })
    }
}

/// A cached optimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The optimal cover, exactly as the original solve returned it.
    /// Hits reproduce this vector bit for bit.
    pub cover: Vec<u32>,
    /// The objective value: cover size (cardinality) or cover weight.
    pub cost: u64,
    /// Search-tree nodes the original (missing) solve visited — the
    /// work every subsequent hit avoids.
    pub tree_nodes: u64,
}

/// LRU result cache with optional disk persistence.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: BTreeMap<CacheKey, CacheEntry>,
    /// Recency order, oldest first. Capacity is small (hundreds), so
    /// the O(len) reorder on hit is noise next to the solve it avoids.
    order: VecDeque<CacheKey>,
    path: Option<PathBuf>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            map: BTreeMap::new(),
            order: VecDeque::new(),
            path: None,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// A cache persisted at `path`: loads the file if it exists (a
    /// missing or malformed file starts empty — the cache is an
    /// optimization, never a correctness dependency) and rewrites it
    /// on every mutation.
    pub fn persisted(capacity: usize, path: &Path) -> Self {
        let mut cache = ResultCache::new(capacity);
        cache.path = Some(path.to_path_buf());
        if let Ok(text) = std::fs::read_to_string(path) {
            cache.absorb_json(&text);
        }
        cache
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count (lookups that found nothing).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime LRU evictions (capacity pressure only; [`clear`]
    /// does not count).
    ///
    /// [`clear`]: ResultCache::clear
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn lookup(&mut self, key: CacheKey) -> Option<CacheEntry> {
        match self.map.get(&key) {
            Some(entry) => {
                self.hits += 1;
                let entry = entry.clone();
                self.touch(key);
                Some(entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently
    /// used entry when over capacity, then persists if configured.
    pub fn insert(&mut self, key: CacheKey, entry: CacheEntry) {
        if self.map.insert(key, entry).is_none() {
            self.order.push_back(key);
        } else {
            self.touch(key);
        }
        while self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.persist();
    }

    /// Drops every entry (the `EVICT --cache` verb). Returns how many
    /// were dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        self.order.clear();
        self.persist();
        n
    }

    fn touch(&mut self, key: CacheKey) {
        if let Some(pos) = self.order.iter().position(|k| *k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    /// The persistence document: schema tag + entries in recency order
    /// (oldest first, so a reload rebuilds the same LRU order).
    pub fn to_json(&self) -> Value {
        let entries = self
            .order
            .iter()
            .filter_map(|k| self.map.get(k).map(|e| (k, e)))
            .map(|(k, e)| {
                obj(vec![
                    ("key", Value::Str(k.to_token())),
                    ("cost", Value::Num(e.cost)),
                    ("tree_nodes", Value::Num(e.tree_nodes)),
                    (
                        "cover",
                        Value::Arr(e.cover.iter().map(|&v| Value::Num(u64::from(v))).collect()),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("schema", Value::Num(1)),
            ("kind", Value::Str("parvc-serve-cache".into())),
            ("entries", Value::Arr(entries)),
        ])
    }

    fn absorb_json(&mut self, text: &str) {
        let Ok(doc) = json::parse(text) else { return };
        if doc.get("kind").and_then(Value::str) != Some("parvc-serve-cache") {
            return;
        }
        let Some(entries) = doc.get("entries").and_then(Value::arr) else {
            return;
        };
        for item in entries {
            let Some(key) = item
                .get("key")
                .and_then(Value::str)
                .and_then(CacheKey::parse)
            else {
                continue;
            };
            let (Some(cost), Some(tree_nodes), Some(cover)) = (
                item.get("cost").and_then(Value::num),
                item.get("tree_nodes").and_then(Value::num),
                item.get("cover").and_then(Value::arr),
            ) else {
                continue;
            };
            let cover: Vec<u32> = cover
                .iter()
                .filter_map(Value::num)
                .map(|v| v as u32)
                .collect();
            if self
                .map
                .insert(
                    key,
                    CacheEntry {
                        cover,
                        cost,
                        tree_nodes,
                    },
                )
                .is_none()
            {
                self.order.push_back(key);
            }
        }
        while self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
    }

    fn persist(&self) {
        if let Some(path) = &self.path {
            // Best-effort: a failed write degrades to an in-memory
            // cache rather than failing the request that solved.
            let _ = std::fs::write(path, self.to_json().to_pretty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(hash: u64) -> CacheKey {
        CacheKey {
            hash,
            objective: Objective::Cardinality,
        }
    }

    fn entry(tag: u64) -> CacheEntry {
        CacheEntry {
            cover: vec![tag as u32, tag as u32 + 1],
            cost: tag,
            tree_nodes: 10 * tag,
        }
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), entry(1));
        c.insert(key(2), entry(2));
        assert_eq!(c.lookup(key(1)), Some(entry(1)), "hit refreshes recency");
        c.insert(key(3), entry(3)); // evicts key(2), the LRU
        assert_eq!(c.lookup(key(2)), None);
        assert_eq!(c.lookup(key(1)), Some(entry(1)));
        assert_eq!(c.lookup(key(3)), Some(entry(3)));
        assert_eq!((c.hits(), c.misses(), c.evictions()), (3, 1, 1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.clear(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn objective_separates_entries() {
        let mut c = ResultCache::new(8);
        let w = CacheKey {
            hash: 7,
            objective: Objective::Weighted,
        };
        c.insert(key(7), entry(1));
        c.insert(w, entry(2));
        assert_eq!(c.lookup(key(7)), Some(entry(1)));
        assert_eq!(c.lookup(w), Some(entry(2)));
    }

    #[test]
    fn key_token_round_trips() {
        for k in [
            key(0),
            key(u64::MAX),
            CacheKey {
                hash: 42,
                objective: Objective::Weighted,
            },
        ] {
            assert_eq!(CacheKey::parse(&k.to_token()), Some(k));
        }
        assert_eq!(CacheKey::parse("zz:mvc"), None);
        assert_eq!(CacheKey::parse("0:pvc"), None);
        assert_eq!(CacheKey::parse("no-colon"), None);
    }

    #[test]
    fn json_round_trips_with_order() {
        let mut c = ResultCache::new(4);
        c.insert(key(1), entry(1));
        c.insert(key(2), entry(2));
        c.lookup(key(1)); // key(2) is now the LRU
        let text = c.to_json().to_pretty();
        let mut back = ResultCache::new(4);
        back.absorb_json(&text);
        // Order survived: key(2) is the reloaded LRU, so filling the
        // cache evicts it first while key(1) stays resident.
        back.insert(key(3), entry(3));
        back.insert(key(4), entry(4));
        back.insert(key(5), entry(5));
        assert_eq!(back.lookup(key(2)), None, "reloaded LRU evicted first");
        assert_eq!(back.lookup(key(1)), Some(entry(1)));
    }

    #[test]
    fn malformed_persistence_starts_empty() {
        let mut c = ResultCache::new(4);
        c.absorb_json("not json at all");
        c.absorb_json("{\"kind\": \"something-else\", \"entries\": []}");
        c.absorb_json("{\"kind\": \"parvc-serve-cache\", \"entries\": [{\"key\": \"junk\"}]}");
        assert!(c.is_empty());
    }
}
