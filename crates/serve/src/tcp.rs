//! The TCP front end: newline-delimited requests in, one JSON line
//! out per request, multiplexed over a bounded worker pool.
//!
//! Each accepted connection becomes one job on a
//! [`scoped_threadpool::Pool`], so at most `workers` connections are
//! serviced concurrently — the pool is the transport-level bound,
//! while [`Server`]'s high-water mark bounds the exact-solve tier
//! *within* those connections. Requests on one connection are handled
//! in order; responses for `LOAD`/`SOLVE`/`RESOLVE`/`STATS`/`EVICT`
//! come back on the same connection, one line each. A `QUIT` line
//! closes the connection; blank lines and `#` comments are ignored.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::server::Server;

/// Serves `server` on `listener` until `stop` becomes true, handling
/// at most `workers` connections at a time. Returns the number of
/// connections served. The listener should usually be non-blocking or
/// the caller should arrange a final wake-up connection after setting
/// `stop` — `accept` itself is not interrupted.
pub fn serve_listener(
    server: &Server,
    listener: &TcpListener,
    workers: u32,
    stop: &AtomicBool,
) -> std::io::Result<u64> {
    let mut pool = scoped_threadpool::Pool::new(workers.max(1));
    let mut served = 0u64;
    pool.scoped(|scope| {
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    served += 1;
                    scope.execute(move || {
                        // A dropped connection only ends that stream.
                        let _ = handle_connection(server, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    Ok(served)
}

/// Runs one connection to completion: read request lines, write one
/// response line per request, stop at EOF or `QUIT`.
pub fn handle_connection(server: &Server, stream: TcpStream) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().eq_ignore_ascii_case("QUIT") {
            break;
        }
        if let Some(response) = server.handle(&line) {
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
    }
    Ok(())
}
