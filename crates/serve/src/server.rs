//! The in-process server core: instance registry, per-instance
//! resolve sessions, admission control, and the cache-backed solve
//! path.
//!
//! [`Server`] is transport-agnostic: [`Server::handle`] maps one
//! request line to one response line and is safe to call from many
//! threads at once (the TCP front end in [`crate::tcp`] does exactly
//! that from a bounded worker pool; tests and the `serve_load` bench
//! call it directly). Internally:
//!
//! - a **registry** maps names to loaded instances; each instance
//!   carries its own lock, so solves on different instances run
//!   concurrently while requests against one instance serialize;
//! - the **result cache** ([`crate::cache`]) answers repeat content
//!   without re-solving and persists across runs;
//! - **admission control** sheds exact-solve load once the number of
//!   in-flight exact solves reaches the configured high-water mark:
//!   shed requests get the bounded 2-approximation's certificate
//!   answer (`cost ≤ 2 × lower_bound ≤ 2 × OPT`) in linear time
//!   instead of queueing without bound;
//! - per-request deadlines ride [`Solver::with_deadline`], the same
//!   wall-clock budget machinery `parvc solve --deadline` uses.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parvc_core::approx::approx_cover;
use parvc_core::{
    Algorithm, ExecutorSpec, MvcResult, PrepConfig, ResolveSession, SeedStrategy, SolveStats,
    Solver, TelemetryConfig, TelemetrySnapshot,
};
use parvc_graph::gen::spec;
use parvc_graph::{io, CsrGraph, EditScript};
use parvc_obs::{RecordingSink, Sink, SpanTimer};
use parvc_simgpu::counters::{BlockCounters, LaunchReport};
use parvc_simgpu::exec::SERIAL;
use parvc_simgpu::DeviceSpec;

use crate::cache::{CacheEntry, CacheKey, Objective, ResultCache};
use crate::proto::{self, Request, SolveFlags};

use parvc_bench::json::Value;

/// Server configuration. `Default` is the recommended starting point:
/// the Hybrid policy with kernelization on, a serial intra-block
/// executor, and a 128-entry in-memory cache.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Schedule policy for exact solves.
    pub algorithm: Algorithm,
    /// Intra-block executor spec.
    pub executor: ExecutorSpec,
    /// Kernelize + decompose ahead of every exact solve.
    pub prep: bool,
    /// Cap on resident blocks per launch (None = device-sized).
    pub grid_limit: Option<u32>,
    /// Admission high-water mark: once this many exact solves are in
    /// flight, further `SOLVE` requests are shed to certificate-only
    /// answers. `0` sheds everything (useful in tests); cache hits
    /// are served even under overload.
    pub high_water: usize,
    /// Default wall-clock budget per exact solve; a request's
    /// `--deadline` overrides it.
    pub default_deadline: Option<Duration>,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Persist the result cache to this file (loaded at startup,
    /// rewritten on every mutation).
    pub cache_path: Option<PathBuf>,
    /// Attach a recording sink to the server: every request gets a
    /// `serve`-category span and the `serve.*` counters, exported via
    /// [`Server::into_telemetry`].
    pub telemetry: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            algorithm: Algorithm::Hybrid,
            executor: ExecutorSpec::Serial,
            prep: true,
            grid_limit: None,
            high_water: 4,
            default_deadline: None,
            cache_capacity: 128,
            cache_path: None,
            telemetry: false,
        }
    }
}

/// A [`ResolveSession`] that owns (via `Arc`) the solver it borrows,
/// so the registry can hold sessions for as long as instances live.
struct OwnedSession {
    /// SAFETY invariant: `session` borrows the `Solver` behind
    /// `solver`'s heap allocation. The `Arc` keeps that allocation
    /// alive and at a stable address for this struct's whole life,
    /// and field order drops `session` before `solver`, so the
    /// erased borrow never dangles. The solver itself is never
    /// mutated (sessions take `&Solver`).
    session: ResolveSession<'static>,
    /// Never read — held purely to keep the solver allocation alive
    /// for the session's erased borrow.
    #[allow(dead_code)]
    solver: Arc<Solver>,
    weighted: bool,
}

impl OwnedSession {
    fn new(solver: Arc<Solver>, weighted: bool, g: &CsrGraph, prev: &MvcResult) -> Self {
        let solver_ref: &Solver = &solver;
        // SAFETY: see the field invariant above — the referent lives
        // behind the Arc held by this same struct and outlives the
        // session by drop order.
        let solver_static: &'static Solver = unsafe { std::mem::transmute(solver_ref) };
        let session = ResolveSession::from_solved(solver_static, g, prev);
        OwnedSession {
            session,
            solver,
            weighted,
        }
    }
}

struct Instance {
    graph: CsrGraph,
    source: String,
    session: Option<OwnedSession>,
}

#[derive(Default)]
struct RequestCounts {
    load: AtomicU64,
    solve: AtomicU64,
    resolve: AtomicU64,
    stats: AtomicU64,
    evict: AtomicU64,
    errors: AtomicU64,
    sheds: AtomicU64,
}

/// The in-process `parvc serve` core. See the module docs.
pub struct Server {
    cfg: ServeConfig,
    /// Exact-solve variants: indexed by `weighted * 2 + seed_approx`.
    solvers: [Arc<Solver>; 4],
    registry: Mutex<BTreeMap<String, Arc<Mutex<Instance>>>>,
    cache: Mutex<ResultCache>,
    /// Solver counters merged across every request's telemetry
    /// snapshot (`engine.*`, `resolve.*`, …) — the `STATS` payload.
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    in_flight: AtomicUsize,
    reqs: RequestCounts,
    sink: Option<RecordingSink>,
}

/// Decrements the in-flight gauge when an exact solve finishes.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Server {
    /// Builds a server from `cfg`, loading the persisted cache if one
    /// is configured.
    pub fn new(cfg: ServeConfig) -> Self {
        let build = |weighted: bool, seed_approx: bool| -> Arc<Solver> {
            let mut b = Solver::builder()
                .algorithm(cfg.algorithm)
                .executor(cfg.executor)
                .grid_limit(cfg.grid_limit)
                .deadline(cfg.default_deadline)
                // Metrics-only telemetry on every solve: this is what
                // surfaces `engine.oversize_inline` and the `resolve.*`
                // reuse counters in STATS. The sink contract pins this
                // as non-interfering (tests/telemetry_safety.rs).
                .telemetry(TelemetryConfig {
                    spans: false,
                    metrics: true,
                    model_cycles: false,
                    ..Default::default()
                });
            if cfg.prep {
                b = b.preprocess(PrepConfig::default());
            }
            if weighted {
                b = b.weighted();
            }
            if seed_approx {
                b = b.seed(SeedStrategy::Approx);
            }
            Arc::new(b.build())
        };
        let cache = match &cfg.cache_path {
            Some(path) => ResultCache::persisted(cfg.cache_capacity, path),
            None => ResultCache::new(cfg.cache_capacity),
        };
        let sink = cfg.telemetry.then(|| {
            RecordingSink::new(&TelemetryConfig {
                spans: true,
                metrics: true,
                model_cycles: false,
                ..Default::default()
            })
        });
        Server {
            solvers: [
                build(false, false),
                build(false, true),
                build(true, false),
                build(true, true),
            ],
            registry: Mutex::new(BTreeMap::new()),
            cache: Mutex::new(cache),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            in_flight: AtomicUsize::new(0),
            reqs: RequestCounts::default(),
            sink,
            cfg,
        }
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Consumes the server and returns the recorded `serve` telemetry
    /// (spans per request, `serve.*` counters), if
    /// [`ServeConfig::telemetry`] was on.
    pub fn into_telemetry(self) -> Option<TelemetrySnapshot> {
        self.sink.map(RecordingSink::into_snapshot)
    }

    /// Handles one request line, returning the one response line —
    /// or `None` for blank/comment lines, which get no response.
    /// Callable from many threads at once.
    pub fn handle(&self, line: &str) -> Option<String> {
        let req = match proto::parse_request(line) {
            Ok(None) => return None,
            Ok(Some(req)) => req,
            Err(e) => {
                self.reqs.errors.fetch_add(1, Ordering::Relaxed);
                self.count("serve.error");
                return Some(proto::err_line(&e));
            }
        };
        let verb = match &req {
            Request::Load { .. } => "load",
            Request::Solve { .. } => "solve",
            Request::Resolve { .. } => "resolve",
            Request::Stats => "stats",
            Request::EvictInstance { .. } | Request::EvictCache => "evict",
        };
        let timer = self.sink.as_ref().map(|s| SpanTimer::start(s));
        self.count("serve.request");
        let start = Instant::now();
        let result = match req {
            Request::Load { name, instance } => {
                self.reqs.load.fetch_add(1, Ordering::Relaxed);
                self.count("serve.load");
                self.do_load(&name, &instance)
            }
            Request::Solve { name, flags } => {
                self.reqs.solve.fetch_add(1, Ordering::Relaxed);
                self.count("serve.solve");
                self.do_solve(&name, &flags)
            }
            Request::Resolve { name, edits, flags } => {
                self.reqs.resolve.fetch_add(1, Ordering::Relaxed);
                self.count("serve.resolve");
                self.do_resolve(&name, &edits, &flags)
            }
            Request::Stats => {
                self.reqs.stats.fetch_add(1, Ordering::Relaxed);
                self.count("serve.stats");
                Ok(self.do_stats())
            }
            Request::EvictInstance { name } => {
                self.reqs.evict.fetch_add(1, Ordering::Relaxed);
                self.count("serve.evict");
                self.do_evict_instance(&name)
            }
            Request::EvictCache => {
                self.reqs.evict.fetch_add(1, Ordering::Relaxed);
                self.count("serve.evict");
                let dropped = self.cache.lock().unwrap().clear();
                Ok(vec![
                    ("evicted", Value::Str("cache".into())),
                    ("entries_dropped", Value::Num(dropped as u64)),
                ])
            }
        };
        if let (Some(sink), Some(timer)) = (self.sink.as_ref(), timer) {
            match verb {
                "load" => timer.finish(sink, "serve", "load", 0, 0),
                "solve" => timer.finish(sink, "serve", "solve", 0, 0),
                "resolve" => timer.finish(sink, "serve", "resolve", 0, 0),
                "stats" => timer.finish(sink, "serve", "stats", 0, 0),
                _ => timer.finish(sink, "serve", "evict", 0, 0),
            }
        }
        Some(match result {
            Ok(mut fields) => {
                fields.push(("micros", Value::Num(start.elapsed().as_micros() as u64)));
                proto::ok_line(verb, fields)
            }
            Err(e) => {
                self.reqs.errors.fetch_add(1, Ordering::Relaxed);
                self.count("serve.error");
                proto::err_line(&e)
            }
        })
    }

    fn count(&self, name: &'static str) {
        if let Some(sink) = &self.sink {
            sink.counter(name, 1);
        }
    }

    fn solver(&self, weighted: bool, seed_approx: bool) -> &Arc<Solver> {
        &self.solvers[usize::from(weighted) * 2 + usize::from(seed_approx)]
    }

    fn instance(&self, name: &str) -> Result<Arc<Mutex<Instance>>, String> {
        self.registry
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| format!("unknown instance '{name}' (LOAD it first)"))
    }

    fn merge_solve_telemetry(&self, stats: &SolveStats) {
        if let Some(snap) = &stats.telemetry {
            let mut counters = self.counters.lock().unwrap();
            for (k, v) in &snap.counters {
                *counters.entry((*k).to_string()).or_insert(0) += v;
            }
            drop(counters);
            let mut gauges = self.gauges.lock().unwrap();
            for (k, v) in &snap.gauges {
                gauges.insert((*k).to_string(), *v);
            }
        }
    }

    fn merge_resolve_stats(&self, stats: &parvc_core::ResolveStats) {
        let mut counters = self.counters.lock().unwrap();
        for (name, value) in [
            (
                "resolve.components_total",
                u64::from(stats.components_total),
            ),
            (
                "resolve.components_reused",
                u64::from(stats.components_reused),
            ),
            (
                "resolve.components_resolved",
                u64::from(stats.components_resolved),
            ),
            ("resolve.warm_bound_hits", u64::from(stats.warm_bound_hits)),
            ("resolve.uf_rebuilds", stats.uf_rebuilds),
            ("resolve.tree_nodes", stats.resolve_tree_nodes),
        ] {
            *counters.entry(name.to_string()).or_insert(0) += value;
        }
    }

    // ---- LOAD ----------------------------------------------------

    fn do_load(&self, name: &str, instance: &str) -> Result<Vec<(&'static str, Value)>, String> {
        let graph = load_instance(instance)?;
        let fields = vec![
            ("instance", Value::Str(proto::sanitize(name))),
            ("vertices", Value::Num(u64::from(graph.num_vertices()))),
            ("edges", Value::Num(graph.num_edges())),
            ("weighted", Value::Bool(graph.is_weighted())),
            ("hash", Value::Str(format!("{:016x}", graph.content_hash()))),
        ];
        let entry = Arc::new(Mutex::new(Instance {
            graph,
            source: instance.to_string(),
            session: None,
        }));
        let replaced = self
            .registry
            .lock()
            .unwrap()
            .insert(name.to_string(), entry)
            .is_some();
        let mut fields = fields;
        fields.push(("replaced", Value::Bool(replaced)));
        Ok(fields)
    }

    // ---- SOLVE ---------------------------------------------------

    fn do_solve(
        &self,
        name: &str,
        flags: &SolveFlags,
    ) -> Result<Vec<(&'static str, Value)>, String> {
        let inst = self.instance(name)?;
        let inst = inst.lock().unwrap();
        let g = &inst.graph;

        if let Some(k) = flags.k {
            return self.solve_pvc(g, k, flags);
        }
        if flags.approx_only {
            return Ok(self.certificate_answer(g, flags.weighted, false));
        }

        let key = CacheKey {
            hash: g.content_hash(),
            objective: if flags.weighted {
                Objective::Weighted
            } else {
                Objective::Cardinality
            },
        };
        if !flags.no_cache {
            if let Some(hit) = self.cache.lock().unwrap().lookup(key) {
                self.count("serve.cache_hit");
                return Ok(vec![
                    ("cached", Value::Bool(true)),
                    ("size", Value::Num(hit.cover.len() as u64)),
                    ("cost", Value::Num(hit.cost)),
                    ("tree_nodes_saved", Value::Num(hit.tree_nodes)),
                    ("cover", cover_value(&hit.cover)),
                ]);
            }
            self.count("serve.cache_miss");
        }

        // Admission control: past the high-water mark the exact tier
        // is saturated — answer with the certified 2-approximation
        // instead of queueing (linear time, never enters the pool).
        let prior = self.in_flight.fetch_add(1, Ordering::SeqCst);
        let _guard = InFlightGuard(&self.in_flight);
        if prior >= self.cfg.high_water {
            self.reqs.sheds.fetch_add(1, Ordering::Relaxed);
            self.count("serve.shed");
            return Ok(self.certificate_answer(g, flags.weighted, true));
        }

        let base = self.solver(flags.weighted, flags.seed_approx);
        let r = match flags.deadline_secs {
            Some(secs) => base
                .with_deadline(Some(Duration::from_secs_f64(secs)))
                .solve_mvc(g),
            None => base.solve_mvc(g),
        };
        self.merge_solve_telemetry(&r.stats);
        let exact = !r.stats.timed_out;
        if exact && !flags.no_cache {
            self.cache.lock().unwrap().insert(
                key,
                CacheEntry {
                    cover: r.cover.clone(),
                    cost: if flags.weighted {
                        r.weight
                    } else {
                        u64::from(r.size)
                    },
                    tree_nodes: r.stats.tree_nodes,
                },
            );
        }
        Ok(vec![
            ("cached", Value::Bool(false)),
            ("size", Value::Num(u64::from(r.size))),
            (
                "cost",
                Value::Num(if flags.weighted {
                    r.weight
                } else {
                    u64::from(r.size)
                }),
            ),
            ("tree_nodes", Value::Num(r.stats.tree_nodes)),
            ("timed_out", Value::Bool(r.stats.timed_out)),
            ("cover", cover_value(&r.cover)),
        ])
    }

    fn solve_pvc(
        &self,
        g: &CsrGraph,
        k: u32,
        flags: &SolveFlags,
    ) -> Result<Vec<(&'static str, Value)>, String> {
        // PVC answers depend on k, so they bypass the cache; they are
        // also never shed (the certificate only answers some ks).
        let base = self.solver(false, flags.seed_approx);
        let r = match flags.deadline_secs {
            Some(secs) => base
                .with_deadline(Some(Duration::from_secs_f64(secs)))
                .solve_pvc(g, k),
            None => base.solve_pvc(g, k),
        };
        self.merge_solve_telemetry(&r.stats);
        let mut fields = vec![
            ("k", Value::Num(u64::from(k))),
            ("found", Value::Bool(r.found())),
            ("timed_out", Value::Bool(r.stats.timed_out)),
        ];
        if let Some(cover) = &r.cover {
            fields.push(("size", Value::Num(cover.len() as u64)));
            fields.push(("cover", cover_value(cover)));
        }
        Ok(fields)
    }

    /// The certificate-only answer: a valid cover with
    /// `cost ≤ 2 × lower_bound ≤ 2 × OPT`, produced in linear time by
    /// the PR 9 approximation tier. Used for explicit `--approx`
    /// requests and for overload shedding (`degraded: true`).
    fn certificate_answer(
        &self,
        g: &CsrGraph,
        weighted: bool,
        shed: bool,
    ) -> Vec<(&'static str, Value)> {
        let mut counters = BlockCounters::new(0);
        let a = approx_cover(g, weighted, &SERIAL, &mut counters);
        vec![
            ("degraded", Value::Bool(shed)),
            ("certified", Value::Bool(true)),
            ("cost", Value::Num(a.cost)),
            ("lower_bound", Value::Num(a.lower_bound)),
            ("rounds", Value::Num(u64::from(a.rounds))),
            ("size", Value::Num(a.cover.len() as u64)),
            ("cover", cover_value(&a.cover)),
        ]
    }

    // ---- RESOLVE -------------------------------------------------

    fn do_resolve(
        &self,
        name: &str,
        edits: &str,
        flags: &SolveFlags,
    ) -> Result<Vec<(&'static str, Value)>, String> {
        let inst = self.instance(name)?;
        let mut inst = inst.lock().unwrap();
        if let Some(session) = &inst.session {
            if session.weighted != flags.weighted {
                let have = if session.weighted {
                    "weighted"
                } else {
                    "cardinality"
                };
                return Err(format!(
                    "instance '{name}' has an open {have} session; EVICT and reLOAD to switch objective"
                ));
            }
        }
        if inst.session.is_none() {
            // Seed the session with an exact baseline for the current
            // graph: from cache when the content is known (counted as
            // a hit), otherwise by solving once (counted as a miss and
            // cached like any other solve).
            let key = CacheKey {
                hash: inst.graph.content_hash(),
                objective: if flags.weighted {
                    Objective::Weighted
                } else {
                    Objective::Cardinality
                },
            };
            let cached = self.cache.lock().unwrap().lookup(key);
            let baseline = match cached {
                Some(hit) => {
                    self.count("serve.cache_hit");
                    synthetic_result(&inst.graph, &hit)
                }
                None => {
                    self.count("serve.cache_miss");
                    let solver = self.solver(flags.weighted, false);
                    let r = solver.solve_mvc(&inst.graph);
                    self.merge_solve_telemetry(&r.stats);
                    if r.stats.timed_out {
                        return Err(format!(
                            "baseline solve for '{name}' hit the deadline; no exact session to seed"
                        ));
                    }
                    self.cache.lock().unwrap().insert(
                        key,
                        CacheEntry {
                            cover: r.cover.clone(),
                            cost: if flags.weighted {
                                r.weight
                            } else {
                                u64::from(r.size)
                            },
                            tree_nodes: r.stats.tree_nodes,
                        },
                    );
                    r
                }
            };
            let solver = Arc::clone(self.solver(flags.weighted, false));
            inst.session = Some(OwnedSession::new(
                solver,
                flags.weighted,
                &inst.graph,
                &baseline,
            ));
        }

        let script = parse_edit_spec(edits, &inst.graph)?;
        let session = inst.session.as_mut().expect("session just ensured");
        let resolved = session
            .session
            .resolve(&script)
            .map_err(|e| format!("edit batch failed: {e}"))?;
        self.merge_resolve_stats(&resolved.stats);
        self.merge_solve_telemetry(&resolved.result.stats);

        let r = &resolved.result;
        let cost = if flags.weighted {
            r.weight
        } else {
            u64::from(r.size)
        };
        // The session's graph advanced; keep the registry copy (and
        // the cache) in step so a follow-up SOLVE hits.
        inst.graph = resolved.graph;
        if !r.stats.timed_out {
            self.cache.lock().unwrap().insert(
                CacheKey {
                    hash: inst.graph.content_hash(),
                    objective: if flags.weighted {
                        Objective::Weighted
                    } else {
                        Objective::Cardinality
                    },
                },
                CacheEntry {
                    cover: r.cover.clone(),
                    cost,
                    tree_nodes: resolved.stats.resolve_tree_nodes,
                },
            );
        }
        Ok(vec![
            ("edits", Value::Num(script.len() as u64)),
            ("size", Value::Num(u64::from(r.size))),
            ("cost", Value::Num(cost)),
            ("vertices", Value::Num(u64::from(inst.graph.num_vertices()))),
            (
                "components_total",
                Value::Num(u64::from(resolved.stats.components_total)),
            ),
            (
                "components_reused",
                Value::Num(u64::from(resolved.stats.components_reused)),
            ),
            (
                "components_resolved",
                Value::Num(u64::from(resolved.stats.components_resolved)),
            ),
            ("tree_nodes", Value::Num(resolved.stats.resolve_tree_nodes)),
            ("timed_out", Value::Bool(r.stats.timed_out)),
            ("cover", cover_value(&r.cover)),
        ])
    }

    // ---- STATS / EVICT ------------------------------------------

    fn do_stats(&self) -> Vec<(&'static str, Value)> {
        let registry = self.registry.lock().unwrap();
        let instances: Vec<Value> = registry
            .iter()
            .map(|(name, inst)| {
                let inst = inst.lock().unwrap();
                parvc_bench::json::obj(vec![
                    ("name", Value::Str(proto::sanitize(name))),
                    ("source", Value::Str(proto::sanitize(&inst.source))),
                    ("vertices", Value::Num(u64::from(inst.graph.num_vertices()))),
                    ("edges", Value::Num(inst.graph.num_edges())),
                    ("session", Value::Bool(inst.session.is_some())),
                ])
            })
            .collect();
        drop(registry);
        let cache = self.cache.lock().unwrap();
        let cache_obj = parvc_bench::json::obj(vec![
            ("entries", Value::Num(cache.len() as u64)),
            ("capacity", Value::Num(cache.capacity() as u64)),
            ("hits", Value::Num(cache.hits())),
            ("misses", Value::Num(cache.misses())),
            ("evictions", Value::Num(cache.evictions())),
        ]);
        drop(cache);
        let counters = self.counters.lock().unwrap();
        let degraded_oversize = counters.get("engine.oversize_inline").copied().unwrap_or(0);
        let counters_obj = Value::Obj(
            counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::Num(*v)))
                .collect(),
        );
        drop(counters);
        let gauges_obj = Value::Obj(
            self.gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), Value::Num(*v)))
                .collect(),
        );
        let load = Ordering::Relaxed;
        vec![
            ("instances", Value::Arr(instances)),
            ("cache", cache_obj),
            (
                "requests",
                parvc_bench::json::obj(vec![
                    ("load", Value::Num(self.reqs.load.load(load))),
                    ("solve", Value::Num(self.reqs.solve.load(load))),
                    ("resolve", Value::Num(self.reqs.resolve.load(load))),
                    ("stats", Value::Num(self.reqs.stats.load(load))),
                    ("evict", Value::Num(self.reqs.evict.load(load))),
                    ("errors", Value::Num(self.reqs.errors.load(load))),
                ]),
            ),
            ("sheds", Value::Num(self.reqs.sheds.load(load))),
            ("degraded_oversize", Value::Num(degraded_oversize)),
            (
                "in_flight",
                Value::Num(self.in_flight.load(Ordering::SeqCst) as u64),
            ),
            ("high_water", Value::Num(self.cfg.high_water as u64)),
            ("counters", counters_obj),
            ("gauges", gauges_obj),
        ]
    }

    fn do_evict_instance(&self, name: &str) -> Result<Vec<(&'static str, Value)>, String> {
        match self.registry.lock().unwrap().remove(name) {
            Some(_) => Ok(vec![
                ("evicted", Value::Str(proto::sanitize(name))),
                ("entries_dropped", Value::Num(1)),
            ]),
            None => Err(format!("unknown instance '{name}'")),
        }
    }
}

fn cover_value(cover: &[u32]) -> Value {
    Value::Arr(cover.iter().map(|&v| Value::Num(u64::from(v))).collect())
}

/// Builds the graph a `LOAD` operand names: a generator spec when the
/// leading segment is a known family, otherwise a graph file (DIMACS
/// for `.dimacs`/`.clq`/`.col`, edge list otherwise).
pub fn load_instance(spec: &str) -> Result<CsrGraph, String> {
    if let Some(g) = spec::parse(spec)? {
        return Ok(g);
    }
    let file = std::fs::File::open(spec).map_err(|e| format!("cannot open {spec}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let parsed = if spec.ends_with(".dimacs") || spec.ends_with(".clq") || spec.ends_with(".col") {
        io::parse_dimacs(reader)
    } else {
        io::parse_edge_list(reader, None)
    };
    parsed.map_err(|e| format!("cannot parse {spec}: {e}"))
}

/// Parses a `RESOLVE --edits` operand: `gen:<ops>[:<insert_frac>][@seed]`
/// (seeded against the instance's current graph) or inline ops in the
/// `EditScript` text format with `;` between ops and `:` inside them
/// (`+e:0:5;-v:3` ⇒ "insert edge {0,5}, delete vertex 3").
pub fn parse_edit_spec(spec: &str, g: &CsrGraph) -> Result<EditScript, String> {
    if let Some(body) = spec.strip_prefix("gen:") {
        let (body, seed) = match body.split_once('@') {
            Some((b, s)) => (
                b,
                s.parse::<u64>()
                    .map_err(|_| format!("bad seed '{s}' in edit spec '{spec}'"))?,
            ),
            None => (body, spec::DEFAULT_SEED),
        };
        let mut parts = body.split(':');
        let ops: usize = parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
            format!("edit spec '{spec}': expected gen:<ops>[:<insert_frac>][@seed]")
        })?;
        let frac: f64 = match parts.next() {
            Some(t) => t
                .parse()
                .map_err(|_| format!("bad insert fraction '{t}' in edit spec '{spec}'"))?,
            None => 0.5,
        };
        return Ok(parvc_graph::gen::edit_script(g, ops, frac, seed));
    }
    let text: String = spec
        .split(';')
        .map(|op| op.replace(':', " "))
        .collect::<Vec<_>>()
        .join("\n");
    EditScript::parse(&text).map_err(|e| format!("bad inline edits '{spec}': {e}"))
}

/// An exact baseline reconstructed from a cache entry: the cover is
/// bit-identical to the solve that filled the entry, which is all a
/// [`ResolveSession`] needs (stats are zeroed — no new search ran).
fn synthetic_result(g: &CsrGraph, entry: &CacheEntry) -> MvcResult {
    MvcResult {
        size: entry.cover.len() as u32,
        weight: g.cover_weight(&entry.cover),
        cover: entry.cover.clone(),
        stats: SolveStats {
            wall_time: Duration::ZERO,
            tree_nodes: 0,
            device_cycles: 0,
            launch: None,
            report: LaunchReport::new(&DeviceSpec::scaled(1), Vec::new()),
            greedy_size: 0,
            timed_out: false,
            prep: None,
            telemetry: None,
        },
    }
}
