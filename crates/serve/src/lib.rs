//! Solver-as-a-service: `parvc serve`'s line protocol, keyed result
//! cache, and admission control.
//!
//! The paper's solver is a batch program: one graph in, one cover
//! out. This crate wraps it as a long-running service for the
//! workloads the incremental tier (PR 8) and the approximation tier
//! (PR 9) were built for — streams of related instances, repeat
//! content, and bursty demand:
//!
//! - [`proto`] — the newline-delimited request/response protocol
//!   (`LOAD` / `SOLVE` / `RESOLVE` / `STATS` / `EVICT`), serde-free
//!   over [`parvc_bench::json`];
//! - [`cache`] — the LRU result cache keyed by
//!   `(content hash, objective)`, persisted to disk;
//! - [`server`] — the transport-agnostic core: instance registry,
//!   per-instance [`ResolveSession`]s, per-request deadlines, and
//!   overload shedding to 2-approximation certificates;
//! - [`tcp`] — the TCP front end over a bounded worker pool.
//!
//! The full protocol reference lives in `docs/serve.md`; the
//! operator's guide in `docs/operations.md`.
//!
//! ```
//! use parvc_serve::{ServeConfig, Server};
//!
//! let server = Server::new(ServeConfig::default());
//! let loaded = server.handle("LOAD demo gnp:40:0.1@7").unwrap();
//! assert!(loaded.contains("\"ok\":true"));
//! let first = server.handle("SOLVE demo").unwrap();
//! assert!(first.contains("\"cached\":false"));
//! let again = server.handle("SOLVE demo").unwrap();
//! assert!(again.contains("\"cached\":true"));
//! ```
//!
//! [`ResolveSession`]: parvc_core::ResolveSession

#![warn(missing_docs)]

pub mod cache;
pub mod proto;
pub mod server;
pub mod tcp;

pub use cache::{CacheEntry, CacheKey, Objective, ResultCache};
pub use proto::{parse_request, verb_table_markdown, Request, SolveFlags, VerbHelp, VERBS};
pub use server::{load_instance, parse_edit_spec, ServeConfig, Server};
pub use tcp::serve_listener;
