//! # parvc-simgpu — the GPU execution model
//!
//! The paper runs CUDA kernels on a Volta V100; this reproduction has no
//! GPU, so this crate models the parts of GPU execution that the paper's
//! claims actually depend on:
//!
//! * [`DeviceSpec`] — the architectural parameters §IV-E reasons about
//!   (SM count, resident thread/block limits, shared memory, global
//!   memory), with a [`DeviceSpec::v100`] preset matching the paper.
//! * [`occupancy`] — the paper's block-size and kernel-variant selection
//!   procedure, implemented verbatim from §IV-E.
//! * [`CostModel`] / [`counters`] — model-cycle accounting. A thread
//!   block's intra-block parallelism (reduction trees over the degree
//!   array, cooperative neighborhood removals) is *charged* rather than
//!   executed: an op over `n` items with block size `B` costs
//!   `ceil(n/B)` parallel steps. Per-activity cycle counters regenerate
//!   the paper's Figure 6 breakdown; per-SM aggregation regenerates
//!   Figure 5.
//! * [`runtime`] — thread blocks as OS threads, mapped round-robin onto
//!   virtual SMs.
//! * [`exec`] — the intra-block data-parallel seam: accounting always
//!   follows the `ceil(n/B)` model above, but the flat passes behind
//!   it can *actually execute* chunked across a worker pool
//!   ([`PooledExec`]) instead of inline ([`SerialExec`]), with
//!   bit-identical results and counters by construction.
//!
//! What is deliberately *not* modeled: warp divergence, memory
//! coalescing, bank conflicts. The paper's performance story is about
//! work distribution and load balance of an irregular tree search; those
//! micro-architectural effects perturb constants, not the comparisons
//! this reproduction targets.
//!
//! Part of the `parvc` workspace — see `ARCHITECTURE.md` at the
//! repository root for how the cost/counter accounting threads through
//! the solver engine.

#![warn(missing_docs)]

mod cost;
pub mod counters;
mod device;
pub mod exec;
pub mod obs;
pub mod occupancy;
pub mod runtime;
pub mod trace;

pub use cost::CostModel;
pub use device::DeviceSpec;
pub use exec::{ExecutorSpec, ParallelExecutor, PooledExec, SerialExec};
pub use occupancy::{KernelVariant, LaunchConfig};
