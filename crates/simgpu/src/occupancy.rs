//! Block-size and kernel-variant selection — the paper's §IV-E procedure.
//!
//! The tension §IV-E resolves: large graphs need big intermediate-graph
//! state per block, which squeezes (a) how many per-block stacks fit in
//! global memory and (b) how many blocks' working nodes fit in shared
//! memory per SM. Both caps push toward *fewer, larger* blocks; full
//! occupancy needs enough total threads. The procedure below mirrors the
//! paper's: compute an upper block-size limit (hardware, and no more
//! threads than vertices), a lower limit (full-occupancy threads divided
//! by the block-count cap), pick a power of two in range, and fall back
//! to the global-memory kernel when shared memory makes full occupancy
//! impossible.

use crate::DeviceSpec;

/// Which memory holds the intermediate graph a block is working on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// Working node in shared memory: fast accesses, but the node's
    /// `O(|V|)` bytes count against the SM's shared-memory budget.
    SharedMem,
    /// Working node in global memory: slower accesses, no shared-memory
    /// occupancy pressure. The fallback for large graphs.
    GlobalMem,
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelVariant::SharedMem => write!(f, "shared"),
            KernelVariant::GlobalMem => write!(f, "global"),
        }
    }
}

/// A resolved kernel launch: block size, grid size, variant, and the
/// memory arithmetic that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Threads per block.
    pub block_size: u32,
    /// Number of thread blocks in the (persistent) grid — the device's
    /// resident-block capacity at this block size.
    pub grid_blocks: u32,
    /// Selected kernel variant.
    pub variant: KernelVariant,
    /// Resident blocks per SM under this configuration.
    pub blocks_per_sm: u32,
    /// Whether full SM thread occupancy is achieved.
    pub full_occupancy: bool,
    /// Bytes of global memory one per-block stack reserves.
    pub stack_bytes_per_block: u64,
    /// Total global memory reserved (stacks + worklist entries).
    pub total_global_bytes: u64,
    /// Record per-charge [`crate::counters::Span`]s during the launch
    /// (timeline profiling, see [`crate::trace`]). Off by default.
    pub record_trace: bool,
}

/// Inputs to the launch selection.
#[derive(Debug, Clone)]
pub struct LaunchRequest {
    /// `|V(G)|` — bounds useful threads per block and sizes the
    /// intermediate graph.
    pub num_vertices: u32,
    /// Maximum search depth (greedy cover size for MVC, `k+1` for PVC);
    /// sizes each pre-allocated stack.
    pub stack_depth: u32,
    /// Global worklist capacity in entries (each `O(|V|)` bytes).
    pub worklist_entries: u64,
    /// Force a specific variant (the evaluation sweeps both); `None`
    /// applies the paper's shared-first-then-fallback rule.
    pub force_variant: Option<KernelVariant>,
    /// Force a specific block size (the evaluation tries all legal
    /// powers of two and reports the best; `None` picks the smallest
    /// legal one, maximizing block count).
    pub force_block_size: Option<u32>,
}

/// Bytes of one intermediate graph (degree array + counters): one `i32`
/// per vertex plus cover-size / edge-count / bookkeeping words.
pub fn node_bytes(num_vertices: u32) -> u64 {
    num_vertices as u64 * 4 + 16
}

/// Errors from launch selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Even one block's stack (plus the worklist) exceeds global memory.
    GlobalMemoryExhausted {
        /// Bytes required for a single block plus the worklist.
        required: u64,
        /// Device capacity.
        available: u64,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::GlobalMemoryExhausted { required, available } => write!(
                f,
                "graph too large: one block needs {required} B of global memory, device has {available} B"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Selects block size, grid size, and kernel variant per §IV-E.
pub fn select_launch(
    device: &DeviceSpec,
    req: &LaunchRequest,
) -> Result<LaunchConfig, LaunchError> {
    let variants: &[KernelVariant] = match req.force_variant {
        Some(KernelVariant::SharedMem) => &[KernelVariant::SharedMem],
        Some(KernelVariant::GlobalMem) => &[KernelVariant::GlobalMem],
        // Paper's rule: prefer shared memory; if its occupancy lower
        // limit exceeds the upper limit, relax by falling back to the
        // global-memory kernel.
        None => &[KernelVariant::SharedMem, KernelVariant::GlobalMem],
    };

    let mut last: Option<LaunchConfig> = None;
    for (i, &variant) in variants.iter().enumerate() {
        let cfg = select_for_variant(device, req, variant)?;
        let is_last_option = i + 1 == variants.len();
        if cfg.full_occupancy || is_last_option {
            if cfg.full_occupancy || last.is_none() {
                return Ok(cfg);
            }
            // Neither variant reaches full occupancy: prefer the one
            // with more resident parallelism, tie-break to shared.
            let prev = last.take().expect("checked is_none");
            return Ok(if cfg.grid_blocks > prev.grid_blocks {
                cfg
            } else {
                prev
            });
        }
        last = Some(cfg);
    }
    unreachable!("loop always returns on the last variant")
}

fn select_for_variant(
    device: &DeviceSpec,
    req: &LaunchRequest,
    variant: KernelVariant,
) -> Result<LaunchConfig, LaunchError> {
    let node = node_bytes(req.num_vertices);
    let stack_bytes = node * (req.stack_depth as u64 + 1);
    let worklist_bytes = node * req.worklist_entries;

    // ---- Upper limit on block size (§IV-E): hardware, and |V| ----
    // "it is not useful to have more threads in the block than the
    // number of vertices"; snap to a power of two, at least one warp.
    let useful = req
        .num_vertices
        .max(1)
        .next_power_of_two()
        .min(device.max_threads_per_block);
    let upper_block = useful
        .max(device.warp_size)
        .min(device.max_threads_per_block);

    // ---- Upper limit on simultaneous blocks ----
    // (a) hardware resident-block limit,
    let hw_blocks_total = device.max_blocks_per_sm as u64 * device.num_sms as u64;
    // (b) shared-memory limit (shared variant only),
    let shared_blocks_per_sm = match variant {
        KernelVariant::SharedMem => device.shared_mem_per_sm / node,
        KernelVariant::GlobalMem => u64::MAX,
    };
    let shared_blocks_total = shared_blocks_per_sm.saturating_mul(device.num_sms as u64);
    // (c) global-memory limit on the number of stacks.
    let mem_for_stacks = device.global_mem.saturating_sub(worklist_bytes);
    let global_blocks_total = mem_for_stacks / stack_bytes.max(1);
    if global_blocks_total == 0
        || (matches!(variant, KernelVariant::SharedMem) && shared_blocks_per_sm == 0)
    {
        if matches!(variant, KernelVariant::GlobalMem) || req.force_variant.is_some() {
            return Err(LaunchError::GlobalMemoryExhausted {
                required: stack_bytes + worklist_bytes,
                available: device.global_mem,
            });
        }
        // Shared variant impossible at any size; caller falls back.
        return select_for_variant(device, req, KernelVariant::GlobalMem);
    }
    let max_blocks_total = hw_blocks_total
        .min(shared_blocks_total)
        .min(global_blocks_total);
    let max_blocks_per_sm =
        (max_blocks_total / device.num_sms as u64).clamp(1, device.max_blocks_per_sm as u64) as u32;

    // ---- Lower limit on block size: full occupancy across the caps ----
    let lower_block = device.full_occupancy_threads().div_ceil(max_blocks_per_sm);
    let lower_block = round_up_pow2(lower_block).max(device.warp_size);

    let (block_size, full_occupancy) = match req.force_block_size {
        Some(forced) => {
            let fo = forced >= lower_block && forced <= upper_block;
            (forced.min(device.max_threads_per_block), fo)
        }
        None if lower_block <= upper_block => (lower_block, true),
        // Impossible to reach full occupancy: take the largest legal
        // block size and run under-occupied (§IV-E last resort).
        None => (upper_block, false),
    };

    // Resident blocks per SM at this block size.
    let by_threads = device.max_threads_per_sm / block_size.max(1);
    let blocks_per_sm = by_threads.min(max_blocks_per_sm).max(1);
    let grid_blocks = (blocks_per_sm as u64 * device.num_sms as u64)
        .min(global_blocks_total)
        .max(1) as u32;

    Ok(LaunchConfig {
        block_size,
        grid_blocks,
        variant,
        blocks_per_sm,
        full_occupancy,
        stack_bytes_per_block: stack_bytes,
        total_global_bytes: stack_bytes * grid_blocks as u64 + worklist_bytes,
        record_trace: false,
    })
}

fn round_up_pow2(x: u32) -> u32 {
    x.max(1).next_power_of_two()
}

/// All block sizes the paper's sweep would try for this request:
/// powers of two between the occupancy lower limit and the upper limit
/// (falling back to just the upper limit when the range is empty).
pub fn candidate_block_sizes(device: &DeviceSpec, req: &LaunchRequest) -> Vec<u32> {
    let upper = req
        .num_vertices
        .max(1)
        .next_power_of_two()
        .min(device.max_threads_per_block)
        .max(device.warp_size);
    let mut sizes = Vec::new();
    let mut b = device.warp_size;
    while b <= upper {
        sizes.push(b);
        b *= 2;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(v: u32, depth: u32) -> LaunchRequest {
        LaunchRequest {
            num_vertices: v,
            stack_depth: depth,
            worklist_entries: 1024,
            force_variant: None,
            force_block_size: None,
        }
    }

    #[test]
    fn small_dense_graph_selects_shared() {
        // 300 vertices → 1216 B nodes; 96 KB/SM holds ~80 of them, so
        // the shared variant reaches full occupancy easily.
        let cfg = select_launch(&DeviceSpec::v100(), &req(300, 20)).unwrap();
        assert_eq!(cfg.variant, KernelVariant::SharedMem);
        assert!(cfg.full_occupancy);
        assert!(cfg.block_size.is_power_of_two());
        assert!(
            cfg.block_size >= 64,
            "2048 threads / 32 blocks = 64 minimum"
        );
    }

    #[test]
    fn huge_graph_falls_back_to_global() {
        // 40k vertices → 160 KB node: cannot fit even one in 96 KB of
        // shared memory → the paper's global-memory fallback.
        let cfg = select_launch(&DeviceSpec::v100(), &req(40_000, 100)).unwrap();
        assert_eq!(cfg.variant, KernelVariant::GlobalMem);
    }

    #[test]
    fn shared_limit_raises_block_size() {
        // Node of ~24 KB → 4 blocks/SM in shared memory → full occupancy
        // needs blocks of 2048/4 = 512 threads.
        let cfg = select_launch(&DeviceSpec::v100(), &req(6_000, 50)).unwrap();
        if cfg.variant == KernelVariant::SharedMem {
            assert!(cfg.block_size >= 512);
            assert!(cfg.blocks_per_sm <= 4);
        }
    }

    #[test]
    fn grid_respects_global_memory() {
        // Tiny device, deep stacks: the stack storage cap must bound the
        // grid. 1 MB global, node = 416 B at v=100, depth 50 → stack =
        // ~21 KB → at most ~48 blocks minus worklist share.
        let mut r = req(100, 50);
        r.worklist_entries = 16;
        let cfg = select_launch(&DeviceSpec::test_tiny(), &r).unwrap();
        assert!(cfg.total_global_bytes <= DeviceSpec::test_tiny().global_mem);
    }

    #[test]
    fn graph_too_large_for_device_errors() {
        let mut r = req(1_000_000, 1000);
        r.force_variant = Some(KernelVariant::GlobalMem);
        let err = select_launch(&DeviceSpec::test_tiny(), &r).unwrap_err();
        assert!(matches!(err, LaunchError::GlobalMemoryExhausted { .. }));
    }

    #[test]
    fn forced_block_size_is_respected() {
        let mut r = req(300, 20);
        r.force_block_size = Some(128);
        let cfg = select_launch(&DeviceSpec::v100(), &r).unwrap();
        assert_eq!(cfg.block_size, 128);
    }

    #[test]
    fn block_size_never_exceeds_hw_limit() {
        let cfg = select_launch(&DeviceSpec::v100(), &req(1 << 20, 10)).unwrap();
        assert!(cfg.block_size <= 1024);
    }

    #[test]
    fn tiny_graph_uses_warp_minimum() {
        let cfg = select_launch(&DeviceSpec::v100(), &req(5, 5)).unwrap();
        assert!(cfg.block_size >= 32);
    }

    #[test]
    fn candidates_are_powers_of_two_up_to_v() {
        let c = candidate_block_sizes(&DeviceSpec::v100(), &req(300, 10));
        assert_eq!(c, vec![32, 64, 128, 256, 512]);
    }

    #[test]
    fn grid_blocks_positive_and_bounded() {
        for v in [10u32, 100, 1000, 10_000] {
            let cfg = select_launch(&DeviceSpec::v100(), &req(v, 30)).unwrap();
            assert!(cfg.grid_blocks >= 1);
            assert!(
                cfg.grid_blocks <= 32 * 80,
                "grid {} exceeds resident capacity",
                cfg.grid_blocks
            );
        }
    }
}
