//! The model-cycle cost model for intra-block parallel primitives.
//!
//! A GPU thread block executes the paper's graph operations
//! cooperatively: all `B` threads scan slices of the degree array,
//! reduction trees find the max-degree vertex, neighborhoods are
//! decremented in parallel. We charge those costs instead of spawning
//! `B` threads per block: an operation touching `n` items takes
//! `ceil(n/B)` *parallel steps*, each step costing one compute unit plus
//! one memory access whose price depends on where the working node lives
//! (shared vs global — the two kernel variants of §IV-E).
//!
//! The constants are deliberately round numbers: the reproduction
//! targets relative shape (which activities dominate, how load spreads),
//! not absolute V100 latencies.

use crate::occupancy::KernelVariant;

/// Cycle prices for the primitive operations of the traversal kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Compute cost of one parallel step (per `B`-thread wavefront).
    pub step: u64,
    /// Cost of a block-wide barrier (`__syncthreads()`).
    pub sync: u64,
    /// Per-step access cost when the working node is in shared memory.
    pub shared_access: u64,
    /// Per-step access cost when the working node is in global memory.
    pub global_access: u64,
    /// Cost of one worklist/queue operation (atomics + slot traffic).
    pub queue_op: u64,
    /// Cost of a single global atomic (e.g. updating `best`).
    pub atomic_op: u64,
    /// Cycles charged for one starvation poll sleep (§IV-C wait loop).
    pub poll_sleep: u64,
    /// Cost of copying one intermediate graph (stack push/pop moves a
    /// degree array between the working area and the stack), per vertex.
    pub copy_per_vertex_milli: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            step: 4,
            sync: 8,
            shared_access: 2,
            global_access: 12,
            queue_op: 64,
            atomic_op: 16,
            poll_sleep: 512,
            copy_per_vertex_milli: 500, // 0.5 cycles/vertex: wide coalesced copy
        }
    }
}

impl CostModel {
    /// Cycles for a cooperative operation over `items` elements with
    /// `block_size` threads: `ceil(items/B)` steps plus one barrier.
    pub fn parallel_op(&self, items: u64, block_size: u32, variant: KernelVariant) -> u64 {
        let waves = items.div_ceil(block_size.max(1) as u64);
        waves * (self.step + self.access(variant)) + self.sync
    }

    /// Cycles for a reduction tree over `items` elements (find-max,
    /// count): `ceil(log2)` extra barrier rounds after the scan.
    pub fn reduction_tree(&self, items: u64, block_size: u32, variant: KernelVariant) -> u64 {
        let levels = 64 - u64::leading_zeros(block_size.max(2) as u64 - 1) as u64;
        self.parallel_op(items, block_size, variant) + levels * (self.step + self.sync)
    }

    /// Cycles to move one intermediate graph of `num_vertices` between
    /// the working area and a stack slot.
    pub fn node_copy(&self, num_vertices: u32, block_size: u32, variant: KernelVariant) -> u64 {
        let copy = (num_vertices as u64 * self.copy_per_vertex_milli) / 1000;
        copy.max(1) + self.parallel_op(num_vertices as u64, block_size, variant) / 4
    }

    /// Per-step memory access price for a variant.
    #[inline]
    pub fn access(&self, variant: KernelVariant) -> u64 {
        match variant {
            KernelVariant::SharedMem => self.shared_access,
            KernelVariant::GlobalMem => self.global_access,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_op_scales_with_items_and_block() {
        let m = CostModel::default();
        let small = m.parallel_op(100, 128, KernelVariant::SharedMem);
        let large = m.parallel_op(1000, 128, KernelVariant::SharedMem);
        assert!(large > small);
        let wide = m.parallel_op(1000, 1024, KernelVariant::SharedMem);
        assert!(wide < large, "more threads must reduce cycles");
    }

    #[test]
    fn global_variant_costs_more() {
        let m = CostModel::default();
        assert!(
            m.parallel_op(500, 128, KernelVariant::GlobalMem)
                > m.parallel_op(500, 128, KernelVariant::SharedMem)
        );
    }

    #[test]
    fn reduction_tree_adds_log_rounds() {
        let m = CostModel::default();
        let flat = m.parallel_op(256, 256, KernelVariant::SharedMem);
        let tree = m.reduction_tree(256, 256, KernelVariant::SharedMem);
        assert!(tree > flat);
    }

    #[test]
    fn zero_items_still_costs_a_sync() {
        let m = CostModel::default();
        assert_eq!(m.parallel_op(0, 128, KernelVariant::SharedMem), m.sync);
    }

    #[test]
    fn node_copy_positive() {
        let m = CostModel::default();
        assert!(m.node_copy(1, 32, KernelVariant::SharedMem) >= 1);
        assert!(
            m.node_copy(10_000, 256, KernelVariant::GlobalMem)
                > m.node_copy(100, 256, KernelVariant::GlobalMem)
        );
    }
}
