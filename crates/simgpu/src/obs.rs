//! Bridges between the simulator and the `parvc-obs` telemetry layer:
//! an executor wrapper that records dispatch spans, and the converter
//! that lifts [`BlockCounters`]
//! model-cycle traces onto the snapshot's synthetic model lane.

use parvc_obs::{instant, Lane, Sink, SpanRecord, SpanTimer};

use crate::counters::BlockCounters;
use crate::exec::ParallelExecutor;

/// A [`ParallelExecutor`] decorator that records every real fan-out as
/// a `"dispatch"`-category span (plus dispatch counters) on its way to
/// the wrapped executor.
///
/// Wrap only when the sink is enabled: the disabled solve path keeps
/// the bare executor, so telemetry-off runs take zero extra virtual
/// hops through the seam.
pub struct ObservedExec<'a> {
    inner: &'a dyn ParallelExecutor,
    sink: &'a dyn Sink,
    track: u32,
}

impl std::fmt::Debug for ObservedExec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedExec")
            .field("inner", &self.inner)
            .field("track", &self.track)
            .finish()
    }
}

impl<'a> ObservedExec<'a> {
    /// Wraps `inner`, attributing dispatch spans to `track` (0 = the
    /// solver thread, `b + 1` = block `b`).
    pub fn new(inner: &'a dyn ParallelExecutor, sink: &'a dyn Sink, track: u32) -> Self {
        ObservedExec { inner, sink, track }
    }
}

// SAFETY-free Sync/Send: both references are to Sync trait objects
// (`ParallelExecutor: Send + Sync`, `Sink: Sync`), so the derive-less
// auto impls already hold; nothing manual needed.

impl ParallelExecutor for ObservedExec<'_> {
    fn threads(&self) -> usize {
        self.inner.threads()
    }

    fn chunks_for(&self, n: usize) -> usize {
        self.inner.chunks_for(n)
    }

    fn dispatch(&self, n: usize, task: &(dyn Fn(usize, usize, usize) + Sync)) {
        let chunks = self.inner.chunks_for(n);
        let t = SpanTimer::start(self.sink);
        self.inner.dispatch(n, task);
        t.finish(
            self.sink,
            "dispatch",
            if chunks > 1 { "fan-out" } else { "inline" },
            self.track,
            n as u64,
        );
        self.sink.counter("exec.dispatches", 1);
        self.sink.counter("exec.dispatch_items", n as u64);
        if chunks > 1 {
            self.sink.counter("exec.fan_outs", 1);
            self.sink.observe("exec.chunks", chunks as u64);
        }
    }
}

/// Records a checkpoint-rebuild instant (the component-steal policy's
/// union-find rebuild after adopting donated work) against `track`.
pub fn rebuild_instant(sink: &dyn Sink, track: u32, size: u64) {
    instant(sink, "steal", "checkpoint-rebuild", track, size);
    sink.counter("steal.rebuilds", 1);
}

/// Converts per-block model-cycle span logs (recorded by
/// [`BlockCounters::enable_tracing`]) into [`Lane::Model`] records for
/// the Chrome exporter's synthetic model-cycle process. Blocks without
/// a trace contribute nothing.
///
/// A component-split solve reports one `BlockCounters` set per
/// sub-search, each with its cycle clock restarted at 0 and block ids
/// reused. Sub-searches run sequentially, so when a block id repeats
/// the later log is laid end-to-end after the earlier one (offset by
/// the earlier block's total cycles) — track `b` stays one
/// well-nested timeline per block rather than a pile of overlapping
/// clocks.
pub fn model_cycle_records(blocks: &[BlockCounters]) -> Vec<SpanRecord> {
    let mut out = Vec::new();
    let mut offsets: std::collections::BTreeMap<u32, u64> = Default::default();
    for b in blocks {
        let base = offsets.entry(b.block_id).or_insert(0);
        if let Some(trace) = b.trace() {
            for s in trace {
                if s.cycles == 0 {
                    continue;
                }
                out.push(SpanRecord {
                    cat: "model",
                    name: s.activity.label(),
                    track: b.block_id,
                    lane: Lane::Model,
                    start_us: *base + s.start_cycle,
                    dur_us: s.cycles,
                    arg: 0,
                    instant: false,
                });
            }
        }
        *base += b.total_cycles();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Activity;
    use crate::exec::{PooledExec, SERIAL};
    use parvc_obs::{RecordingSink, TelemetryConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn observed_exec_delegates_and_records() {
        let sink = RecordingSink::new(&TelemetryConfig::default());
        let obs = ObservedExec::new(&SERIAL, &sink, 3);
        assert_eq!(obs.threads(), 1);
        assert_eq!(obs.chunks_for(1 << 20), 1);
        let count = AtomicUsize::new(0);
        obs.dispatch(100, &|_, s, e| {
            count.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        let snap = sink.into_snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].cat, "dispatch");
        assert_eq!(snap.spans[0].name, "inline");
        assert_eq!(snap.spans[0].track, 3);
        assert_eq!(snap.spans[0].arg, 100);
        assert_eq!(snap.counters["exec.dispatches"], 1);
        assert!(!snap.counters.contains_key("exec.fan_outs"));
    }

    #[test]
    fn observed_pooled_fan_out_counts_chunks() {
        let inner = PooledExec::new(3);
        let sink = RecordingSink::new(&TelemetryConfig::default());
        let obs = ObservedExec::new(&inner, &sink, 1);
        let n = 50_000;
        let count = AtomicUsize::new(0);
        obs.dispatch(n, &|_, s, e| {
            count.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), n);
        let snap = sink.into_snapshot();
        assert_eq!(snap.spans[0].name, "fan-out");
        assert_eq!(snap.counters["exec.fan_outs"], 1);
        assert!(snap.histograms["exec.chunks"].count == 1);
    }

    #[test]
    fn model_records_skip_untraced_and_zero_spans() {
        let mut a = BlockCounters::new(0);
        a.enable_tracing();
        a.charge(Activity::DegreeOneRule, 10);
        a.charge(Activity::FindMaxDegree, 0); // dropped by charge()
        a.charge(Activity::RemoveMaxVertex, 5);
        let b = BlockCounters::new(1); // no trace
        let recs = model_cycle_records(&[a, b]);
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.lane == Lane::Model && r.track == 0));
        assert_eq!(recs[0].name, Activity::DegreeOneRule.label());
        assert_eq!(recs[0].start_us, 0);
        assert_eq!(recs[0].dur_us, 10);
        assert_eq!(recs[1].start_us, 10);
    }

    #[test]
    fn repeated_block_ids_tile_sequentially_on_one_track() {
        // Two sub-searches, both reporting as block 0 with restarted
        // cycle clocks: the second log must land after the first.
        let mut a = BlockCounters::new(0);
        a.enable_tracing();
        a.charge(Activity::DegreeOneRule, 10);
        a.charge(Activity::RemoveMaxVertex, 5);
        let mut b = BlockCounters::new(0);
        b.enable_tracing();
        b.charge(Activity::FindMaxDegree, 7);
        let recs = model_cycle_records(&[a, b]);
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|r| r.track == 0));
        assert_eq!(recs[2].start_us, 15, "second log offset by first's total");
        assert_eq!(recs[2].dur_us, 7);
        // No overlap: each span starts at or after the previous end.
        for w in recs.windows(2) {
            assert!(w[1].start_us >= w[0].start_us + w[0].dur_us);
        }
    }
}
