//! The intra-block data-parallel seam: [`ParallelExecutor`].
//!
//! Historically the simulator only *cost-modeled* intra-block
//! parallelism — an op over `n` items was charged `ceil(n/B)` cycles
//! but executed serially on the block's OS thread. This module makes
//! the seam real: flat passes over index ranges (`0..n`) go through a
//! [`ParallelExecutor`], which either runs them inline
//! ([`SerialExec`], exactly the old behavior) or splits them into
//! warp-multiple chunks spread over a persistent worker pool
//! ([`PooledExec`]).
//!
//! ## The conformance contract
//!
//! Executors change *wall-clock*, never *results* or *accounting*:
//!
//! * Model-cycle charges are computed from instance quantities (item
//!   counts, degrees), never from which executor ran the pass or how
//!   it was chunked — so `BlockCounters` are the cross-backend oracle:
//!   a pooled run must bit-match a serial run's counters.
//! * To keep results identical, every pass written against this seam
//!   must be **chunking-invariant**: per-chunk partial results are
//!   combined in ascending chunk order, and the combination must give
//!   the same answer for any chunk partition of `0..n` (concatenating
//!   ascending per-chunk index lists, layer-synchronous frontier
//!   expansion, associative max with a fixed tie-break, ...).
//!   [`gather_indices`] packages the most common such pass.
//!
//! Chunks are sized in multiples of [`WARP`] (the per-warp-equivalent
//! granularity), and passes shorter than a few thousand items skip
//! dispatch entirely — the pool only ever sees work big enough to
//! amortize the handoff.

use std::sync::{Arc, Mutex, PoisonError};

/// Threads per warp — the chunk-size granularity of pooled passes.
pub const WARP: usize = 32;

/// Below this many items a pass always runs as a single inline chunk:
/// dispatch overhead would swamp any parallel win.
pub const MIN_PARALLEL: usize = 4096;

/// How a flat index pass `0..n` gets executed inside a block.
///
/// The chunk partition for a given `n` is deterministic (it depends
/// only on `n` and the executor's thread count), and
/// [`dispatch`](Self::dispatch) invokes `task(chunk, start, end)`
/// exactly once per chunk, possibly concurrently. See the module docs
/// for the chunking-invariance contract callers must uphold.
pub trait ParallelExecutor: Send + Sync + std::fmt::Debug {
    /// Worker threads available to a pass (1 = everything inline).
    fn threads(&self) -> usize;

    /// The number of chunks a pass over `n` items will be split into.
    /// Callers size per-chunk scratch (e.g. [`ChunkSlots`]) from this.
    fn chunks_for(&self, n: usize) -> usize;

    /// Runs `task(chunk_index, start, end)` over a partition of
    /// `0..n`. Chunks may run on any thread in any order; the
    /// partition itself is the deterministic one
    /// [`chunks_for`](Self::chunks_for) describes. Returns after every
    /// chunk has completed.
    fn dispatch(&self, n: usize, task: &(dyn Fn(usize, usize, usize) + Sync));
}

/// Warp-aligned chunk plan: `(chunk_size, chunk_count)` for a pass of
/// `n` items on `threads` workers.
fn plan(n: usize, threads: usize) -> (usize, usize) {
    if threads <= 1 || n < MIN_PARALLEL {
        return (n.max(1), 1);
    }
    // Two chunks per worker keeps the tail of an uneven pass from
    // idling the pool, without flooding it with tiny jobs.
    let target = threads * 2;
    let size = n.div_ceil(target).div_ceil(WARP) * WARP;
    (size, n.div_ceil(size))
}

/// Today's behavior: every pass runs inline on the calling (block)
/// thread as one chunk.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExec;

/// The always-available serial executor, for contexts that want a
/// `&'static dyn ParallelExecutor` without owning one.
pub static SERIAL: SerialExec = SerialExec;

impl ParallelExecutor for SerialExec {
    fn threads(&self) -> usize {
        1
    }

    fn chunks_for(&self, _n: usize) -> usize {
        1
    }

    fn dispatch(&self, n: usize, task: &(dyn Fn(usize, usize, usize) + Sync)) {
        task(0, 0, n);
    }
}

/// A chunked worker pool: passes big enough to amortize the handoff
/// are split into warp-multiple chunks and spread over persistent
/// worker threads.
///
/// The pool is shared opportunistically: if another block is mid-
/// dispatch (the lock is held), the pass runs its chunks inline
/// instead of queuing — blocks already saturate the machine in that
/// case, and chunking-invariance makes the fallback indistinguishable
/// in results and counters.
pub struct PooledExec {
    pool: Mutex<scoped_threadpool::Pool>,
    threads: usize,
}

impl std::fmt::Debug for PooledExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledExec")
            .field("threads", &self.threads)
            .finish()
    }
}

impl PooledExec {
    /// A pool with `threads` workers (`≥ 1`; 1 degenerates to serial).
    pub fn new(threads: usize) -> Self {
        PooledExec {
            pool: Mutex::new(scoped_threadpool::Pool::new(threads.max(1) as u32)),
            threads: threads.max(1),
        }
    }
}

impl ParallelExecutor for PooledExec {
    fn threads(&self) -> usize {
        self.threads
    }

    fn chunks_for(&self, n: usize) -> usize {
        plan(n, self.threads).1
    }

    fn dispatch(&self, n: usize, task: &(dyn Fn(usize, usize, usize) + Sync)) {
        let (size, chunks) = plan(n, self.threads);
        if chunks == 1 {
            task(0, 0, n);
            return;
        }
        let mut pool = match self.pool.try_lock() {
            Ok(pool) => pool,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                // Pool busy (another block dispatching): same chunks,
                // inline — identical results by chunking-invariance.
                for c in 0..chunks {
                    task(c, c * size, ((c + 1) * size).min(n));
                }
                return;
            }
        };
        pool.scoped(|scope| {
            for c in 0..chunks {
                let start = c * size;
                let end = ((c + 1) * size).min(n);
                scope.execute(move || task(c, start, end));
            }
        });
    }
}

/// Per-chunk output buffers for gather passes, reusable across calls
/// so the hot loop never allocates. Each chunk locks only its own
/// slot (uncontended — the lock exists to satisfy the borrow checker
/// across worker threads, not to serialize).
#[derive(Debug, Default)]
pub struct ChunkSlots {
    slots: Vec<Mutex<Vec<u32>>>,
}

impl ChunkSlots {
    /// Empty slot set; grows on first pooled pass.
    pub fn new() -> Self {
        ChunkSlots { slots: Vec::new() }
    }

    fn ensure(&mut self, k: usize) {
        while self.slots.len() < k {
            self.slots.push(Mutex::new(Vec::new()));
        }
        for s in &mut self.slots[..k] {
            s.get_mut().unwrap_or_else(PoisonError::into_inner).clear();
        }
    }
}

/// The flat classify-and-gather pass: collects every `i in 0..n` with
/// `pred(i)` into `out`, in ascending order — bit-identical to the
/// serial `(0..n).filter(pred).collect()` under any executor, because
/// per-chunk ascending runs concatenated in chunk order are the
/// ascending whole.
///
/// `slots` is caller-owned scratch (per-block, reused across calls);
/// `out` is cleared first.
pub fn gather_indices(
    exec: &dyn ParallelExecutor,
    n: usize,
    pred: &(dyn Fn(u32) -> bool + Sync),
    slots: &mut ChunkSlots,
    out: &mut Vec<u32>,
) {
    out.clear();
    let chunks = exec.chunks_for(n);
    if chunks <= 1 {
        out.extend((0..n as u32).filter(|&v| pred(v)));
        return;
    }
    slots.ensure(chunks);
    let slots_ref: &[Mutex<Vec<u32>>] = &slots.slots;
    exec.dispatch(n, &|c, start, end| {
        let mut slot = slots_ref[c].lock().unwrap_or_else(PoisonError::into_inner);
        slot.extend((start as u32..end as u32).filter(|&v| pred(v)));
    });
    for s in &mut slots.slots[..chunks] {
        out.extend_from_slice(s.get_mut().unwrap_or_else(PoisonError::into_inner));
    }
}

/// Which [`ParallelExecutor`] a solve should use — the configuration
/// surface behind `SolverBuilder::executor(...)` and the CLI's
/// `--exec serial|pooled[:threads]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorSpec {
    /// Intra-block passes run inline on the block thread (default).
    #[default]
    Serial,
    /// Chunked worker pool.
    Pooled {
        /// Worker threads; `None` = the host's available parallelism.
        threads: Option<u32>,
    },
}

impl ExecutorSpec {
    /// Parses `serial`, `pooled`, or `pooled:N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "serial" => Ok(ExecutorSpec::Serial),
            "pooled" => Ok(ExecutorSpec::Pooled { threads: None }),
            _ => match s.strip_prefix("pooled:") {
                Some(t) => match t.parse::<u32>() {
                    Ok(k) if k >= 1 => Ok(ExecutorSpec::Pooled { threads: Some(k) }),
                    _ => Err(format!("invalid pooled thread count '{t}'")),
                },
                None => Err(format!(
                    "unknown executor '{s}' (expected serial | pooled[:threads])"
                )),
            },
        }
    }

    /// Builds the executor this spec describes.
    pub fn build(self) -> Arc<dyn ParallelExecutor> {
        match self {
            ExecutorSpec::Serial => Arc::new(SerialExec),
            ExecutorSpec::Pooled { threads } => {
                let t = threads
                    .map(|t| t as usize)
                    .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
                Arc::new(PooledExec::new(t))
            }
        }
    }
}

impl std::fmt::Display for ExecutorSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutorSpec::Serial => write!(f, "serial"),
            ExecutorSpec::Pooled { threads: None } => write!(f, "pooled"),
            ExecutorSpec::Pooled { threads: Some(t) } => write!(f, "pooled:{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_is_one_inline_chunk() {
        let calls = AtomicUsize::new(0);
        SERIAL.dispatch(100, &|c, s, e| {
            assert_eq!((c, s, e), (0, 0, 100));
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(SERIAL.chunks_for(1 << 20), 1);
    }

    #[test]
    fn plan_is_warp_aligned_and_covers() {
        for n in [0, 1, 100, MIN_PARALLEL, 10_000, 100_001] {
            for threads in [1, 2, 3, 8] {
                let (size, chunks) = plan(n, threads);
                assert!(chunks >= 1);
                if chunks > 1 {
                    assert_eq!(size % WARP, 0, "n={n} t={threads}");
                    assert!(n >= MIN_PARALLEL);
                }
                // The partition exactly covers 0..n.
                assert!(size * (chunks - 1) < n.max(1) && size * chunks >= n);
            }
        }
    }

    #[test]
    fn pooled_partition_covers_every_index_once() {
        let exec = PooledExec::new(3);
        let n = 50_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        assert!(exec.chunks_for(n) > 1);
        exec.dispatch(n, &|_, start, end| {
            for h in &hits[start..end] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn gather_matches_serial_filter_on_any_executor() {
        let pred = |v: u32| v.is_multiple_of(7) || v % 11 == 3;
        let n = 30_000;
        let expect: Vec<u32> = (0..n as u32).filter(|&v| pred(v)).collect();
        for exec in [
            &SERIAL as &dyn ParallelExecutor,
            &PooledExec::new(2),
            &PooledExec::new(5),
        ] {
            let mut slots = ChunkSlots::new();
            let mut out = Vec::new();
            gather_indices(exec, n, &pred, &mut slots, &mut out);
            assert_eq!(out, expect, "{exec:?}");
            // Scratch reuse must not leak previous results.
            gather_indices(exec, 100, &pred, &mut slots, &mut out);
            assert_eq!(out, (0..100).filter(|&v| pred(v)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pooled_runs_inline_when_contended() {
        let exec = PooledExec::new(2);
        let n = 20_000;
        // Hold the pool lock: dispatch must fall back inline and still
        // produce the full partition.
        let guard = exec.pool.lock().unwrap();
        let count = AtomicUsize::new(0);
        exec.dispatch(n, &|_, start, end| {
            count.fetch_add(end - start, Ordering::Relaxed);
        });
        drop(guard);
        assert_eq!(count.load(Ordering::Relaxed), n);
    }

    #[test]
    fn spec_parses_and_builds() {
        assert_eq!(ExecutorSpec::parse("serial"), Ok(ExecutorSpec::Serial));
        assert_eq!(
            ExecutorSpec::parse("pooled"),
            Ok(ExecutorSpec::Pooled { threads: None })
        );
        assert_eq!(
            ExecutorSpec::parse("pooled:4"),
            Ok(ExecutorSpec::Pooled { threads: Some(4) })
        );
        assert!(ExecutorSpec::parse("pooled:0").is_err());
        assert!(ExecutorSpec::parse("gpu").is_err());
        assert_eq!(
            ExecutorSpec::parse("pooled:4").unwrap().to_string(),
            "pooled:4"
        );
        assert_eq!(ExecutorSpec::Serial.build().threads(), 1);
        assert_eq!(
            ExecutorSpec::Pooled { threads: Some(3) }.build().threads(),
            3
        );
    }
}
