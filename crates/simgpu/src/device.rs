//! Device architectural parameters.

/// Architectural parameters of the simulated GPU — every quantity the
/// paper's §IV-E occupancy reasoning uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Hardware limit on resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM, bytes.
    pub shared_mem_per_sm: u64,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// Global memory capacity, bytes.
    pub global_mem: u64,
    /// Threads per warp (the granularity block sizes snap to).
    pub warp_size: u32,
}

impl DeviceSpec {
    /// The paper's evaluation GPU: NVIDIA Volta V100 (SXM2, 32 GB).
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100-sim",
            num_sms: 80,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 96 * 1024,
            max_threads_per_block: 1024,
            global_mem: 32 * 1024 * 1024 * 1024,
            warp_size: 32,
        }
    }

    /// A newer datacenter part for what-if studies: NVIDIA Ampere A100
    /// (more SMs, bigger shared memory per SM, 40 GB HBM2e).
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100-sim",
            num_sms: 108,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 164 * 1024,
            max_threads_per_block: 1024,
            global_mem: 40 * 1024 * 1024 * 1024,
            warp_size: 32,
        }
    }

    /// A scaled-down device for running the full benchmark suite on a
    /// small CPU host: same per-SM shape as the V100, fewer SMs so that
    /// a resident grid is a sane number of OS threads.
    pub fn scaled(num_sms: u32) -> Self {
        DeviceSpec {
            name: "scaled-sim",
            num_sms,
            ..Self::v100()
        }
    }

    /// A tiny device for unit tests (2 SMs, small shared memory) so
    /// occupancy edge cases are reachable with tiny graphs.
    pub fn test_tiny() -> Self {
        DeviceSpec {
            name: "tiny-sim",
            num_sms: 2,
            max_threads_per_sm: 128,
            max_blocks_per_sm: 4,
            shared_mem_per_sm: 4 * 1024,
            max_threads_per_block: 64,
            global_mem: 1024 * 1024,
            warp_size: 32,
        }
    }

    /// Threads needed per SM for full occupancy.
    pub fn full_occupancy_threads(&self) -> u32 {
        self.max_threads_per_sm
    }

    /// The virtual SM a block is resident on. Blocks are assigned
    /// round-robin, matching how a persistent grid fills the device.
    pub fn sm_of_block(&self, block_id: u32) -> u32 {
        block_id % self.num_sms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper_hardware() {
        let d = DeviceSpec::v100();
        assert_eq!(d.num_sms, 80);
        assert_eq!(d.global_mem, 32 * 1024 * 1024 * 1024);
        assert_eq!(d.max_threads_per_block, 1024);
    }

    #[test]
    fn a100_exceeds_v100() {
        let (a, v) = (DeviceSpec::a100(), DeviceSpec::v100());
        assert!(a.num_sms > v.num_sms);
        assert!(a.shared_mem_per_sm > v.shared_mem_per_sm);
        assert!(a.global_mem > v.global_mem);
    }

    #[test]
    fn scaled_keeps_per_sm_shape() {
        let d = DeviceSpec::scaled(8);
        assert_eq!(d.num_sms, 8);
        assert_eq!(d.max_threads_per_sm, DeviceSpec::v100().max_threads_per_sm);
    }

    #[test]
    fn sm_mapping_is_round_robin() {
        let d = DeviceSpec::scaled(4);
        assert_eq!(d.sm_of_block(0), 0);
        assert_eq!(d.sm_of_block(5), 1);
        assert_eq!(d.sm_of_block(11), 3);
    }
}
