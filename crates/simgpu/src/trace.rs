//! Timeline rendering for traced launches.
//!
//! The paper instruments its kernels with SM clocks to attribute cycles
//! to activities (§V-D). With tracing enabled
//! ([`BlockCounters::enable_tracing`]), every charge also records a
//! [`Span`] on the block's model-cycle clock; this module renders those
//! span logs as an ASCII Gantt chart — one row per block, one character
//! per time bucket showing the bucket's dominant activity. Starvation
//! (the `RemoveFromWorklist` waits of an imbalanced run) shows up as
//! long runs of `w`, making load-balance pathologies visible at a
//! glance.

use crate::counters::{Activity, BlockCounters, Span};

/// Single-character code per activity used in timelines.
pub fn activity_char(a: Activity) -> char {
    match a {
        Activity::AddToWorklist => 'a',
        Activity::RemoveFromWorklist => 'w',
        Activity::PushToStack => 's',
        Activity::PopFromStack => 'p',
        Activity::Terminate => 'T',
        Activity::DegreeOneRule => '1',
        Activity::DegreeTwoTriangleRule => '2',
        Activity::HighDegreeRule => 'h',
        Activity::FindMaxDegree => 'm',
        Activity::RemoveMaxVertex => 'x',
        Activity::RemoveNeighbors => 'n',
        Activity::ComponentSplit => 'c',
        Activity::ApproxMatching => 'M',
    }
}

/// The legend explaining [`activity_char`] codes.
pub fn legend() -> String {
    Activity::ALL
        .iter()
        .map(|&a| format!("{}={}", activity_char(a), a.label()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders one block's span log as `width` time buckets over
/// `[0, horizon)` cycles. Each bucket shows the activity holding the
/// most cycles in it; `.` marks idle (uncharged) time.
pub fn render_block(spans: &[Span], horizon: u64, width: usize) -> String {
    assert!(width > 0, "timeline width must be positive");
    let horizon = horizon.max(1);
    let mut buckets = vec![[0u64; Activity::ALL.len()]; width];
    for span in spans {
        let end = span.start_cycle + span.cycles;
        // Distribute the span's cycles across the buckets it overlaps.
        let first = (span.start_cycle * width as u64 / horizon).min(width as u64 - 1) as usize;
        let last =
            ((end.saturating_sub(1)) * width as u64 / horizon).min(width as u64 - 1) as usize;
        for (bucket, slots) in buckets.iter_mut().enumerate().take(last + 1).skip(first) {
            let b_start = bucket as u64 * horizon / width as u64;
            let b_end = (bucket as u64 + 1) * horizon / width as u64;
            let overlap = end.min(b_end).saturating_sub(span.start_cycle.max(b_start));
            slots[span.activity as usize] += overlap;
        }
    }
    buckets
        .iter()
        .map(|bucket| {
            let (best_idx, &best) = bucket
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .expect("activity array is non-empty");
            if best == 0 {
                '.'
            } else {
                activity_char(Activity::ALL[best_idx])
            }
        })
        .collect()
}

/// Renders a whole launch: one row per traced block, aligned on a
/// common horizon (the busiest block's total cycles).
pub fn render_launch(blocks: &[BlockCounters], width: usize) -> String {
    let horizon = blocks.iter().map(|b| b.total_cycles()).max().unwrap_or(1);
    let mut out = String::new();
    out.push_str(&format!(
        "timeline over {horizon} model cycles ({width} buckets/row)\n"
    ));
    for b in blocks {
        match b.trace() {
            Some(spans) => {
                out.push_str(&format!(
                    "block {:>3} |{}|\n",
                    b.block_id,
                    render_block(spans, horizon, width)
                ));
            }
            None => out.push_str(&format!(
                "block {:>3} |{}|\n",
                b.block_id,
                " ".repeat(width)
            )),
        }
    }
    out.push_str(&format!("legend: {} (., idle)\n", legend()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chars_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for a in Activity::ALL {
            assert!(seen.insert(activity_char(a)), "duplicate char for {a:?}");
        }
    }

    #[test]
    fn tracing_records_spans_in_order() {
        let mut c = BlockCounters::new(0);
        c.enable_tracing();
        c.charge(Activity::DegreeOneRule, 10);
        c.charge(Activity::FindMaxDegree, 5);
        c.charge(Activity::DegreeOneRule, 3);
        let spans = c.trace().unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].start_cycle, 0);
        assert_eq!(spans[1].start_cycle, 10);
        assert_eq!(spans[2].start_cycle, 15);
        assert_eq!(c.cycles(Activity::DegreeOneRule), 13);
    }

    #[test]
    fn zero_cycle_charges_not_recorded() {
        let mut c = BlockCounters::new(0);
        c.enable_tracing();
        c.charge(Activity::Terminate, 0);
        assert!(c.trace().unwrap().is_empty());
    }

    #[test]
    fn untraced_counters_record_nothing() {
        let mut c = BlockCounters::new(0);
        c.charge(Activity::Terminate, 9);
        assert!(c.trace().is_none());
    }

    #[test]
    fn render_marks_dominant_activity() {
        let spans = [
            Span {
                activity: Activity::DegreeOneRule,
                start_cycle: 0,
                cycles: 50,
            },
            Span {
                activity: Activity::RemoveFromWorklist,
                start_cycle: 50,
                cycles: 50,
            },
        ];
        let row = render_block(&spans, 100, 10);
        assert_eq!(row, "11111wwwww");
    }

    #[test]
    fn render_handles_idle_tail() {
        let spans = [Span {
            activity: Activity::Terminate,
            start_cycle: 0,
            cycles: 10,
        }];
        let row = render_block(&spans, 100, 10);
        assert_eq!(row, "T.........");
    }

    #[test]
    fn render_launch_has_one_row_per_block() {
        let mut a = BlockCounters::new(0);
        a.enable_tracing();
        a.charge(Activity::DegreeOneRule, 10);
        let mut b = BlockCounters::new(1);
        b.enable_tracing();
        b.charge(Activity::RemoveFromWorklist, 20);
        let out = render_launch(&[a, b], 8);
        assert_eq!(out.lines().filter(|l| l.starts_with("block")).count(), 2);
        assert!(out.contains("legend"));
    }

    #[test]
    fn span_overlapping_many_buckets() {
        let spans = [Span {
            activity: Activity::HighDegreeRule,
            start_cycle: 0,
            cycles: 100,
        }];
        let row = render_block(&spans, 100, 4);
        assert_eq!(row, "hhhh");
    }
}
