//! Per-activity cycle counters and per-SM load aggregation.
//!
//! The paper instruments its kernels with SM clocks to attribute cycles
//! to eleven activities (Figure 6) and counts tree nodes visited per SM
//! to measure load balance (Figure 5). This module is that
//! instrumentation: each block owns a [`BlockCounters`] (no atomics —
//! merged after the launch), and [`LaunchReport`] reproduces both
//! aggregations.

use crate::DeviceSpec;

/// The activities the paper's Figure 6 breaks kernel time into, plus an
/// explicit idle bucket for starvation waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Activity {
    /// Adding a donated tree node to the global worklist.
    AddToWorklist = 0,
    /// Removing a tree node from the global worklist (includes
    /// contention and waiting — the paper's biggest distribution cost).
    RemoveFromWorklist,
    /// Pushing a tree node to the per-block local stack.
    PushToStack,
    /// Popping a tree node from the per-block local stack.
    PopFromStack,
    /// Termination detection (the §IV-C empty-worklist protocol).
    Terminate,
    /// The degree-one reduction rule.
    DegreeOneRule,
    /// The degree-two-triangle reduction rule.
    DegreeTwoTriangleRule,
    /// The high-degree reduction rule.
    HighDegreeRule,
    /// Finding the maximum-degree vertex (parallel reduction tree).
    FindMaxDegree,
    /// Removing the max-degree vertex (right branch of Figure 4).
    RemoveMaxVertex,
    /// Removing all neighbors of the max-degree vertex (left branch).
    RemoveNeighbors,
    /// In-search component branching: the residual-connectivity check
    /// and, when it fires, extracting the per-component sub-instances
    /// (beyond the paper — see `parvc_core::split`).
    ComponentSplit,
    /// The approximate tier's round-matching passes: per-round pick /
    /// handshake scans and the compressed serial tail (see
    /// `parvc_core::approx`).
    ApproxMatching,
}

impl Activity {
    /// All activities: Figure 6's eleven in presentation order, plus
    /// the component-split and approximate-tier extensions.
    pub const ALL: [Activity; 13] = [
        Activity::AddToWorklist,
        Activity::RemoveFromWorklist,
        Activity::PushToStack,
        Activity::PopFromStack,
        Activity::Terminate,
        Activity::DegreeOneRule,
        Activity::DegreeTwoTriangleRule,
        Activity::HighDegreeRule,
        Activity::FindMaxDegree,
        Activity::RemoveMaxVertex,
        Activity::RemoveNeighbors,
        Activity::ComponentSplit,
        Activity::ApproxMatching,
    ];

    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Activity::AddToWorklist => "Add to worklist",
            Activity::RemoveFromWorklist => "Remove from worklist",
            Activity::PushToStack => "Push to stack",
            Activity::PopFromStack => "Pop from stack",
            Activity::Terminate => "Terminate",
            Activity::DegreeOneRule => "Degree-one rule",
            Activity::DegreeTwoTriangleRule => "Degree-two-triangle rule",
            Activity::HighDegreeRule => "High-degree rule",
            Activity::FindMaxDegree => "Find max degree vertex",
            Activity::RemoveMaxVertex => "Remove max-degree vertex",
            Activity::RemoveNeighbors => "Remove neighbors of max-degree vertex",
            Activity::ComponentSplit => "Component split check/extract",
            Activity::ApproxMatching => "Approx matching rounds",
        }
    }

    /// The paper groups the eleven activities into three families.
    pub fn family(self) -> ActivityFamily {
        match self {
            Activity::AddToWorklist
            | Activity::RemoveFromWorklist
            | Activity::PushToStack
            | Activity::PopFromStack
            | Activity::Terminate
            | Activity::ComponentSplit
            | Activity::ApproxMatching => ActivityFamily::WorkDistribution,
            Activity::DegreeOneRule
            | Activity::DegreeTwoTriangleRule
            | Activity::HighDegreeRule => ActivityFamily::Reducing,
            Activity::FindMaxDegree | Activity::RemoveMaxVertex | Activity::RemoveNeighbors => {
                ActivityFamily::Branching
            }
        }
    }
}

/// Figure 6's three activity groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivityFamily {
    /// Work distribution and load balancing.
    WorkDistribution,
    /// Applying the reduction rules.
    Reducing,
    /// Branching (find max, remove vertex / neighborhood).
    Branching,
}

impl ActivityFamily {
    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            ActivityFamily::WorkDistribution => "Work distribution and load balancing",
            ActivityFamily::Reducing => "Reducing",
            ActivityFamily::Branching => "Branching",
        }
    }
}

/// In-search component-branching instrumentation: how often the
/// residual-connectivity check ran, how often it actually split a tree
/// node, and the size distribution of the components produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SplitCounters {
    /// Connectivity checks run (the trigger condition passed).
    pub checks: u64,
    /// Checks that found ≥ 2 components and split the node.
    pub taken: u64,
    /// Total components produced across all splits taken.
    pub components: u64,
    /// Units of work the connectivity backend performed across all
    /// checks: vertex-array reads plus adjacency entries traversed.
    /// Directly comparable between the BFS baseline and the
    /// incremental union-find backend — the `components` bench's
    /// split-cost column.
    pub check_work: u64,
    /// Full label rebuilds the union-find backend performed (the
    /// dirty-region fallback when a stack pop / steal jumps to a node
    /// that is not a descendant of the last-checked one). Zero for the
    /// BFS baseline, which rebuilds implicitly on every check.
    pub uf_rebuilds: u64,
    /// Component-size histogram, bucketed by `log2(|V|)`:
    /// `1, 2–3, 4–7, …, 128+` vertices.
    pub size_hist: [u64; Self::HIST_BUCKETS],
}

impl SplitCounters {
    /// Number of histogram buckets.
    pub const HIST_BUCKETS: usize = 8;

    /// Human label of histogram bucket `i`.
    pub fn bucket_label(i: usize) -> &'static str {
        [
            "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+",
        ][i.min(7)]
    }

    /// Records one taken split over components of the given sizes.
    pub fn record_split(&mut self, sizes: impl IntoIterator<Item = u32>) {
        self.taken += 1;
        for s in sizes {
            self.components += 1;
            let bucket = (32 - (s.max(1)).leading_zeros() as usize - 1).min(Self::HIST_BUCKETS - 1);
            self.size_hist[bucket] += 1;
        }
    }

    /// Accumulates `other` into `self` (cross-block aggregation).
    pub fn merge(&mut self, other: &SplitCounters) {
        self.checks += other.checks;
        self.taken += other.taken;
        self.components += other.components;
        self.check_work += other.check_work;
        self.uf_rebuilds += other.uf_rebuilds;
        for (a, b) in self.size_hist.iter_mut().zip(other.size_hist) {
            *a += b;
        }
    }
}

/// One contiguous charge to an activity, on the block's model-cycle
/// clock — recorded only when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The activity charged.
    pub activity: Activity,
    /// Block-local cycle at which the span starts.
    pub start_cycle: u64,
    /// Length in model cycles.
    pub cycles: u64,
}

/// Hard cap on a block's span log. Tracing pushes ~24 bytes per
/// charge, and a long solve charges billions of times — without a cap
/// the log (not the search) becomes the memory bound. The prefix is
/// kept (enough for [`crate::trace::render_launch`] and the
/// Chrome-trace model lane) and everything past it is counted in
/// [`BlockCounters::trace_dropped`].
pub const MODEL_TRACE_CAP: usize = 1 << 14;

/// Per-block instrumentation, owned exclusively by the block's thread.
#[derive(Debug, Clone)]
pub struct BlockCounters {
    /// Which block these counters belong to.
    pub block_id: u32,
    /// Model cycles per activity, indexed by `Activity as usize`.
    cycles: [u64; Activity::ALL.len()],
    /// Span log, populated when tracing is enabled (prefix only, up to
    /// [`MODEL_TRACE_CAP`] spans).
    trace: Option<Vec<Span>>,
    /// Spans dropped once the log hit [`MODEL_TRACE_CAP`].
    pub trace_dropped: u64,
    /// Tree nodes this block visited (the Figure 5 load metric).
    pub tree_nodes_visited: u64,
    /// Nodes this block donated to the global worklist.
    pub nodes_donated: u64,
    /// Nodes this block obtained from the global worklist.
    pub nodes_from_worklist: u64,
    /// Donations bounced because the worklist was full.
    pub donations_bounced: u64,
    /// Deepest local-stack depth observed.
    pub max_stack_depth: u64,
    /// For steal-based policies: successful steals by this block,
    /// keyed by the victim block id (the Figure-5-style locality
    /// breakdown; empty for non-stealing policies).
    pub steals_by_victim: std::collections::BTreeMap<u32, u64>,
    /// In-search component-branching activity (all zero unless the
    /// solve ran with component branching enabled).
    pub splits: SplitCounters,
}

impl BlockCounters {
    /// Fresh counters for `block_id`.
    pub fn new(block_id: u32) -> Self {
        BlockCounters {
            block_id,
            cycles: [0; Activity::ALL.len()],
            trace: None,
            trace_dropped: 0,
            tree_nodes_visited: 0,
            nodes_donated: 0,
            nodes_from_worklist: 0,
            donations_bounced: 0,
            max_stack_depth: 0,
            steals_by_victim: std::collections::BTreeMap::new(),
            splits: SplitCounters::default(),
        }
    }

    /// Records one successful steal from `victim`'s deque.
    pub fn record_steal(&mut self, victim: u32) {
        *self.steals_by_victim.entry(victim).or_insert(0) += 1;
    }

    /// Starts recording a [`Span`] per charge (timeline tracing).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded span log, if tracing was enabled.
    pub fn trace(&self) -> Option<&[Span]> {
        self.trace.as_deref()
    }

    /// Charges `cycles` to `activity`.
    #[inline]
    pub fn charge(&mut self, activity: Activity, cycles: u64) {
        if let Some(trace) = &mut self.trace {
            if cycles > 0 {
                if trace.len() < MODEL_TRACE_CAP {
                    let start_cycle = self.cycles.iter().sum();
                    trace.push(Span {
                        activity,
                        start_cycle,
                        cycles,
                    });
                } else {
                    self.trace_dropped += 1;
                }
            }
        }
        self.cycles[activity as usize] += cycles;
    }

    /// Cycles charged to `activity` so far.
    pub fn cycles(&self, activity: Activity) -> u64 {
        self.cycles[activity as usize]
    }

    /// Total cycles across all activities.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }
}

/// Per-SM load distribution — Figure 5's data.
#[derive(Debug, Clone, PartialEq)]
pub struct SmLoad {
    /// Tree nodes visited per SM.
    pub nodes_per_sm: Vec<u64>,
    /// Each SM's load normalized to the mean (Figure 5's y-axis).
    pub normalized: Vec<f64>,
}

impl SmLoad {
    /// Aggregates block counters onto their SMs.
    pub fn from_blocks(device: &DeviceSpec, blocks: &[BlockCounters]) -> Self {
        let mut nodes_per_sm = vec![0u64; device.num_sms as usize];
        for b in blocks {
            nodes_per_sm[device.sm_of_block(b.block_id) as usize] += b.tree_nodes_visited;
        }
        let mean = nodes_per_sm.iter().sum::<u64>() as f64 / nodes_per_sm.len().max(1) as f64;
        let normalized = if mean > 0.0 {
            nodes_per_sm.iter().map(|&n| n as f64 / mean).collect()
        } else {
            vec![0.0; nodes_per_sm.len()]
        };
        SmLoad {
            nodes_per_sm,
            normalized,
        }
    }

    /// Smallest normalized SM load (Figure 5's whisker bottom).
    pub fn min(&self) -> f64 {
        self.normalized
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest normalized SM load (the overloaded-SM spike the paper
    /// reports as 63.98× for StackOnly on p_hat1000-1).
    pub fn max(&self) -> f64 {
        self.normalized.iter().copied().fold(0.0, f64::max)
    }

    /// Quantile of the normalized loads (q in \[0,1\], nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.normalized.is_empty() {
            return 0.0;
        }
        let mut sorted = self.normalized.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("loads are finite"));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    /// Coefficient of variation of per-SM loads — a single imbalance
    /// score (0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let n = self.normalized.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.normalized.iter().sum::<f64>() / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .normalized
            .iter()
            .map(|x| (x - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

/// Merged view of one kernel launch: the inputs for Figures 5 and 6 and
/// the simulated device time.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Every block's counters.
    pub blocks: Vec<BlockCounters>,
    /// Per-SM load aggregation.
    pub sm_load: SmLoad,
    /// Simulated device time: the busiest SM's total cycles (SMs run
    /// concurrently; the slowest one finishes last).
    pub device_cycles: u64,
    /// Total tree nodes visited across all blocks.
    pub total_tree_nodes: u64,
}

impl LaunchReport {
    /// Builds the report from per-block counters.
    pub fn new(device: &DeviceSpec, blocks: Vec<BlockCounters>) -> Self {
        let sm_load = SmLoad::from_blocks(device, &blocks);
        let mut cycles_per_sm = vec![0u64; device.num_sms as usize];
        for b in &blocks {
            cycles_per_sm[device.sm_of_block(b.block_id) as usize] += b.total_cycles();
        }
        let device_cycles = cycles_per_sm.iter().copied().max().unwrap_or(0);
        let total_tree_nodes = blocks.iter().map(|b| b.tree_nodes_visited).sum();
        LaunchReport {
            blocks,
            sm_load,
            device_cycles,
            total_tree_nodes,
        }
    }

    /// Component-branching counters summed across every block of the
    /// launch (all zero unless the solve ran with splitting enabled).
    pub fn split_totals(&self) -> SplitCounters {
        let mut total = SplitCounters::default();
        for b in &self.blocks {
            total.merge(&b.splits);
        }
        total
    }

    /// Figure 6's metric: per-activity share of block time, normalized
    /// *per block* then averaged across blocks ("we normalize the cycle
    /// counts to the total number of cycles executed by the thread block
    /// and take the mean across all thread blocks").
    pub fn activity_breakdown(&self) -> Vec<(Activity, f64)> {
        let mut shares = vec![0.0f64; Activity::ALL.len()];
        let mut counted = 0usize;
        for b in &self.blocks {
            let total = b.total_cycles();
            if total == 0 {
                continue;
            }
            counted += 1;
            for &a in &Activity::ALL {
                shares[a as usize] += b.cycles(a) as f64 / total as f64;
            }
        }
        if counted > 0 {
            for s in &mut shares {
                *s /= counted as f64;
            }
        }
        Activity::ALL
            .iter()
            .map(|&a| (a, shares[a as usize]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(id: u32, nodes: u64, cycles: &[(Activity, u64)]) -> BlockCounters {
        let mut b = BlockCounters::new(id);
        b.tree_nodes_visited = nodes;
        for &(a, c) in cycles {
            b.charge(a, c);
        }
        b
    }

    #[test]
    fn charge_accumulates() {
        let mut b = BlockCounters::new(0);
        b.charge(Activity::DegreeOneRule, 10);
        b.charge(Activity::DegreeOneRule, 5);
        assert_eq!(b.cycles(Activity::DegreeOneRule), 15);
        assert_eq!(b.total_cycles(), 15);
    }

    #[test]
    fn sm_load_normalization() {
        let d = DeviceSpec::scaled(2);
        // Blocks 0,2 → SM0 (30 nodes); blocks 1,3 → SM1 (10 nodes).
        let blocks = vec![
            block(0, 20, &[]),
            block(1, 5, &[]),
            block(2, 10, &[]),
            block(3, 5, &[]),
        ];
        let load = SmLoad::from_blocks(&d, &blocks);
        assert_eq!(load.nodes_per_sm, vec![30, 10]);
        assert!((load.normalized[0] - 1.5).abs() < 1e-12);
        assert!((load.normalized[1] - 0.5).abs() < 1e-12);
        assert!((load.max() - 1.5).abs() < 1e-12);
        assert!(load.imbalance() > 0.0);
    }

    #[test]
    fn perfectly_balanced_has_zero_imbalance() {
        let d = DeviceSpec::scaled(4);
        let blocks: Vec<_> = (0..4).map(|i| block(i, 100, &[])).collect();
        let load = SmLoad::from_blocks(&d, &blocks);
        assert_eq!(load.imbalance(), 0.0);
        assert_eq!(load.min(), 1.0);
        assert_eq!(load.max(), 1.0);
    }

    #[test]
    fn device_cycles_is_busiest_sm() {
        let d = DeviceSpec::scaled(2);
        let blocks = vec![
            block(0, 1, &[(Activity::DegreeOneRule, 100)]),
            block(1, 1, &[(Activity::DegreeOneRule, 10)]),
            block(2, 1, &[(Activity::FindMaxDegree, 50)]), // SM0 again
        ];
        let report = LaunchReport::new(&d, blocks);
        assert_eq!(report.device_cycles, 150);
        assert_eq!(report.total_tree_nodes, 3);
    }

    #[test]
    fn breakdown_is_mean_of_per_block_shares() {
        let d = DeviceSpec::scaled(1);
        // Block A: 100% rule-1. Block B: 50% rule-1, 50% find-max.
        let blocks = vec![
            block(0, 1, &[(Activity::DegreeOneRule, 80)]),
            block(
                1,
                1,
                &[(Activity::DegreeOneRule, 10), (Activity::FindMaxDegree, 10)],
            ),
        ];
        let report = LaunchReport::new(&d, blocks);
        let shares = report.activity_breakdown();
        let get = |a: Activity| {
            shares
                .iter()
                .find(|(x, _)| *x == a)
                .expect("activity present")
                .1
        };
        assert!((get(Activity::DegreeOneRule) - 0.75).abs() < 1e-12);
        assert!((get(Activity::FindMaxDegree) - 0.25).abs() < 1e-12);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_cover_range() {
        let d = DeviceSpec::scaled(4);
        let blocks: Vec<_> = (0..4).map(|i| block(i, (i as u64 + 1) * 10, &[])).collect();
        let load = SmLoad::from_blocks(&d, &blocks);
        assert!(load.quantile(0.0) <= load.quantile(0.5));
        assert!(load.quantile(0.5) <= load.quantile(1.0));
    }

    #[test]
    fn families_partition_activities() {
        use ActivityFamily::*;
        let mut counts = [0; 3];
        for a in Activity::ALL {
            match a.family() {
                WorkDistribution => counts[0] += 1,
                Reducing => counts[1] += 1,
                Branching => counts[2] += 1,
            }
        }
        assert_eq!(counts, [7, 3, 3]);
    }
}
