//! Thread blocks as OS threads.
//!
//! The persistent-kernel execution style the paper uses launches exactly
//! as many blocks as the device can keep resident (the [`LaunchConfig`]
//! grid), and every block loops taking work until the traversal ends. We
//! reproduce that one-to-one: one OS thread per resident block, mapped
//! round-robin onto virtual SMs. Real synchronization (the worklist's
//! atomics) happens between real threads; only intra-block parallelism
//! is cost-modeled.

use crate::counters::BlockCounters;
use crate::{DeviceSpec, LaunchConfig};

/// Identity and placement of one running block.
#[derive(Debug, Clone, Copy)]
pub struct BlockCtx {
    /// Block id within the grid, `0..grid_blocks`.
    pub block_id: u32,
    /// Virtual SM this block is resident on.
    pub sm_id: u32,
    /// Threads per block (feeds the cost model's `ceil(n/B)`).
    pub block_size: u32,
}

/// Runs `body` once per grid block on its own OS thread and returns the
/// per-block counters in block-id order.
///
/// `body` receives the block's context and its fresh counters; whatever
/// state blocks share (worklist, `best`, the CSR graph) is captured by
/// the closure's environment, exactly like kernel arguments in global
/// memory.
pub fn run_blocks<F>(device: &DeviceSpec, config: &LaunchConfig, body: F) -> Vec<BlockCounters>
where
    F: Fn(BlockCtx, &mut BlockCounters) + Sync,
{
    let n = config.grid_blocks;
    let mut results: Vec<Option<BlockCounters>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for (block_id, slot) in results.iter_mut().enumerate() {
            let body = &body;
            let ctx = BlockCtx {
                block_id: block_id as u32,
                sm_id: device.sm_of_block(block_id as u32),
                block_size: config.block_size,
            };
            let record_trace = config.record_trace;
            // A panicking block propagates when the scope joins, like
            // a faulting kernel aborting the launch.
            s.spawn(move || {
                let mut counters = BlockCounters::new(ctx.block_id);
                if record_trace {
                    counters.enable_tracing();
                }
                body(ctx, &mut counters);
                *slot = Some(counters);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every block ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Activity;
    use crate::occupancy::{select_launch, LaunchRequest};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn config(grid: u32) -> LaunchConfig {
        let mut cfg = select_launch(
            &DeviceSpec::test_tiny(),
            &LaunchRequest {
                num_vertices: 64,
                stack_depth: 4,
                worklist_entries: 8,
                force_variant: None,
                force_block_size: None,
            },
        )
        .unwrap();
        cfg.grid_blocks = grid;
        cfg
    }

    #[test]
    fn every_block_runs_once() {
        let device = DeviceSpec::test_tiny();
        let ran = AtomicU64::new(0);
        let counters = run_blocks(&device, &config(6), |ctx, c| {
            ran.fetch_add(1, Ordering::Relaxed);
            c.charge(Activity::Terminate, ctx.block_id as u64 + 1);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 6);
        assert_eq!(counters.len(), 6);
        // Returned in block-id order with the right charges.
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.block_id, i as u32);
            assert_eq!(c.cycles(Activity::Terminate), i as u64 + 1);
        }
    }

    #[test]
    fn blocks_share_environment() {
        let device = DeviceSpec::test_tiny();
        let sum = AtomicU64::new(0);
        run_blocks(&device, &config(8), |ctx, _| {
            sum.fetch_add(ctx.block_id as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..8).sum());
    }

    #[test]
    fn sm_ids_follow_device_mapping() {
        let device = DeviceSpec::test_tiny(); // 2 SMs
        run_blocks(&device, &config(4), |ctx, _| {
            assert_eq!(ctx.sm_id, ctx.block_id % 2);
        });
    }
}
