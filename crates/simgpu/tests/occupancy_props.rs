//! Property tests for the §IV-E launch selection: whatever the graph
//! and device shape, the chosen configuration must respect every
//! hardware limit.

use parvc_simgpu::occupancy::{node_bytes, select_launch, LaunchRequest};
use parvc_simgpu::{DeviceSpec, KernelVariant};
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = DeviceSpec> {
    (1u32..=96, 1u32..=32, 9u32..=18, 6u32..=11).prop_map(
        |(num_sms, max_blocks_per_sm, log_shared, log_block)| DeviceSpec {
            name: "prop-sim",
            num_sms,
            max_threads_per_sm: 2048,
            max_blocks_per_sm,
            shared_mem_per_sm: 1 << log_shared,
            max_threads_per_block: (1 << log_block).min(1024),
            global_mem: 256 * 1024 * 1024,
            warp_size: 32,
        },
    )
}

fn arb_request() -> impl Strategy<Value = LaunchRequest> {
    (1u32..50_000, 1u32..200, 0u64..100_000).prop_map(|(v, depth, wl)| LaunchRequest {
        num_vertices: v,
        stack_depth: depth,
        worklist_entries: wl,
        force_variant: None,
        force_block_size: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn launch_respects_every_limit(device in arb_device(), req in arb_request()) {
        let Ok(cfg) = select_launch(&device, &req) else {
            // Graph too large for this device: a legal outcome.
            return Ok(());
        };
        // Block size: a power of two within hardware limits.
        prop_assert!(cfg.block_size.is_power_of_two());
        prop_assert!(cfg.block_size <= device.max_threads_per_block.max(device.warp_size));
        // Grid: positive, within resident capacity.
        prop_assert!(cfg.grid_blocks >= 1);
        prop_assert!(
            cfg.blocks_per_sm <= device.max_blocks_per_sm,
            "blocks/SM {} over hw limit {}", cfg.blocks_per_sm, device.max_blocks_per_sm
        );
        // Resident threads per SM within limit.
        prop_assert!(cfg.blocks_per_sm * cfg.block_size <= device.max_threads_per_sm);
        // Global memory: stacks + worklist fit.
        prop_assert!(
            cfg.total_global_bytes <= device.global_mem,
            "global {} over capacity {}", cfg.total_global_bytes, device.global_mem
        );
        // Shared variant: the working node fits the SM budget times
        // resident blocks.
        if cfg.variant == KernelVariant::SharedMem {
            prop_assert!(
                node_bytes(req.num_vertices) * cfg.blocks_per_sm as u64
                    <= device.shared_mem_per_sm,
                "shared-memory budget exceeded"
            );
        }
        // Stack sizing matches the depth bound.
        prop_assert_eq!(
            cfg.stack_bytes_per_block,
            node_bytes(req.num_vertices) * (req.stack_depth as u64 + 1)
        );
    }

    #[test]
    fn full_occupancy_claims_are_honest(device in arb_device(), req in arb_request()) {
        let Ok(cfg) = select_launch(&device, &req) else { return Ok(()); };
        if cfg.full_occupancy {
            prop_assert!(
                cfg.blocks_per_sm * cfg.block_size == device.max_threads_per_sm
                    || cfg.blocks_per_sm == device.max_blocks_per_sm,
                "claimed full occupancy with {} blocks x {} threads on {} thread slots",
                cfg.blocks_per_sm, cfg.block_size, device.max_threads_per_sm
            );
        }
    }

    #[test]
    fn forced_variant_is_respected_or_errors(device in arb_device(), mut req in arb_request()) {
        for variant in [KernelVariant::SharedMem, KernelVariant::GlobalMem] {
            req.force_variant = Some(variant);
            if let Ok(cfg) = select_launch(&device, &req) {
                prop_assert_eq!(cfg.variant, variant);
            }
        }
    }
}
