//! The [`Strategy`] trait and the combinators the workspace uses:
//! integer ranges, tuples, [`Just`], `prop_map`, `prop_flat_map`,
//! boxing, and [`Union`] (behind `prop_oneof!`).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree: generation is
/// direct and failures are not shrunk.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: no rejection needed.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Length distribution for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    /// Draws a length.
    pub fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi_exclusive <= self.lo + 1 {
            return self.lo;
        }
        self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}
