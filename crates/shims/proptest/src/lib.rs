//! Offline stand-in for `proptest`: random-input property testing with
//! the upstream call syntax (`proptest!`, `prop_assert*!`, `Strategy`
//! combinators) but no shrinking — a failing case reports the case
//! number and its deterministic seed instead of a minimized input.

#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner {
    //! Runner configuration and per-case plumbing used by the `proptest!` macro.

    /// Error carried out of a failing property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion / rejected case with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// What a property body evaluates to inside the runner.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-case generator (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` of a property; mixing
        /// the case index into the seed decorrelates cases while
        /// keeping every run of the suite identical.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: 0xb5ad_4ece_da1c_e2a9 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (`bound` must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec<S::Value>` with a length drawn from
    /// `size` and elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Uniform choice between strategies with a common `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body
/// runs for `ProptestConfig::cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$strategy, &mut __rng);)+
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property failed at case {case}: {e}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_maps_compose() {
        let strat = (0u32..10, 5usize..=6).prop_map(|(a, b)| a as usize + b);
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((5..16).contains(&v));
        }
    }

    #[test]
    fn flat_map_uses_outer_value() {
        let strat = (1u32..5).prop_flat_map(|n| crate::collection::vec(0..n, 3..4));
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert_eq!(v.len(), 3);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8)];
        let mut rng = TestRng::for_case(2);
        let draws: Vec<u8> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: patterns, strategies, and early `return Ok`.
        #[test]
        fn macro_end_to_end(mut x in 0u32..100, v in crate::collection::vec(0u64..5, 0..10)) {
            x += 1;
            prop_assert!(x >= 1);
            prop_assert!(v.len() < 10);
            if v.is_empty() {
                return Ok(());
            }
            prop_assert_ne!(v.len(), 10);
            prop_assert_eq!(v.iter().filter(|&&e| e < 5).count(), v.len());
        }
    }

    // No #[test] meta: the macro passes attributes through verbatim,
    // so this expands to a plain fn we can call from the negative test.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn failures_panic_with_case_number() {
        always_fails();
    }
}
