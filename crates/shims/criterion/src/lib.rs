//! Offline stand-in for `criterion`: same macros and builder surface,
//! but the runner just times a handful of iterations and prints the
//! mean — enough to compare configurations by eye and to keep bench
//! targets compiling without crates.io access.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Iterations measured per benchmark (after one warm-up call).
const MEASURED_ITERS: u64 = 5;

/// The benchmark context handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&id.into(), &mut f);
    }
}

/// A named collection of benchmarks sharing throughput/sampling config.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput unit (ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (ignored — the shim uses a fixed count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Throughput annotation for a group (display-only upstream; ignored
/// here).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Times closures; handed to every benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..MEASURED_ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = MEASURED_ITERS;
    }

    /// Times `routine` with a fresh `setup()` input per iteration,
    /// excluding the setup cost.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let mut elapsed = Duration::ZERO;
        for _ in 0..MEASURED_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iters = MEASURED_ITERS;
    }

    /// Lets the routine do its own timing over `iters` iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(MEASURED_ITERS);
        self.iters = MEASURED_ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher::default();
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters as u32
    };
    eprintln!("  {id}: {:>12.0} ns/iter", per_iter.as_nanos() as f64);
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; the shim
            // accepts and ignores them.
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1)).sample_size(10);
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(2 + 2);
                }
                start.elapsed()
            })
        });
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_bencher_run() {
        benches();
    }
}
