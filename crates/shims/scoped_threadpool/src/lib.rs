//! Offline stand-in for `scoped_threadpool`: a persistent worker pool
//! whose [`Pool::scoped`] lets jobs borrow from the caller's stack.
//!
//! Workers are spawned once in [`Pool::new`] and parked on a condvar
//! between dispatches, so a `scoped` round trip costs a lock handoff
//! rather than a thread spawn — the property the simulated-GPU
//! executor needs to make per-tree-node data-parallel passes pay off.
//!
//! A job that panics does not kill its worker: the payload is captured
//! and re-thrown from [`Scope::join_all`] (or the scope's drop) on the
//! dispatching thread, matching the upstream crate's propagation.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

type Thunk = Box<dyn FnOnce() + Send + 'static>;

/// One queued job plus the scope it reports completion to.
struct Job {
    thunk: Thunk,
    scope: Arc<ScopeState>,
}

/// Completion tracking for one `scoped` call.
struct ScopeState {
    /// Jobs queued or running; the scope returns when this hits zero.
    pending: Mutex<usize>,
    done: Condvar,
    /// First captured panic payload, re-thrown on the scope's thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Arc<Self> {
        Arc::new(ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }
}

/// Shared pool state the workers drain.
struct PoolShared {
    queue: Mutex<Queue>,
    available: Condvar,
}

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A pool holding a fixed number of persistent worker threads.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with `n` worker threads (`n ≥ 1`).
    pub fn new(n: u32) -> Pool {
        assert!(n >= 1, "a pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> u32 {
        self.workers.len() as u32
    }

    /// Runs `f` with a [`Scope`] whose jobs may borrow anything that
    /// outlives the `scoped` call. All jobs are guaranteed to have
    /// finished before `scoped` returns (the scope joins on drop), so
    /// the borrows can never dangle.
    pub fn scoped<'pool, 'scope, F, R>(&'pool mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            shared: &self.shared,
            state: ScopeState::new(),
            _marker: PhantomData,
        };
        let r = f(&scope);
        scope.join_all();
        r
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        lock(&self.shared.queue).shutdown = true;
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job.thunk)) {
            lock(&job.scope.panic).get_or_insert(payload);
        }
        let mut pending = lock(&job.scope.pending);
        *pending -= 1;
        if *pending == 0 {
            job.scope.done.notify_all();
        }
    }
}

/// Handle for submitting borrowed jobs during one [`Pool::scoped`] call.
pub struct Scope<'pool, 'scope> {
    shared: &'pool PoolShared,
    state: Arc<ScopeState>,
    /// Ties submitted closures to `'scope` (invariant, like upstream).
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Queues `f` for a worker. `f` may borrow `'scope` data — the
    /// scope cannot end before every queued job has run to completion.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: only the lifetime is erased. The job is queued on the
        // pool, and both `join_all` and the scope's drop block until
        // `pending == 0` — i.e. until a worker has finished running
        // this closure — so every `'scope` borrow inside it strictly
        // outlives its use.
        let thunk: Thunk = unsafe { std::mem::transmute(boxed) };
        *lock(&self.state.pending) += 1;
        lock(&self.shared.queue).jobs.push_back(Job {
            thunk,
            scope: Arc::clone(&self.state),
        });
        self.shared.available.notify_one();
    }

    /// Blocks until every job queued so far has completed, re-throwing
    /// the first captured job panic on this thread.
    pub fn join_all(&self) {
        let mut pending = lock(&self.state.pending);
        while *pending > 0 {
            pending = self
                .state
                .done
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(pending);
        if let Some(payload) = lock(&self.state.panic).take() {
            if !std::thread::panicking() {
                resume_unwind(payload);
            }
        }
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        // The safety of `execute`'s lifetime erasure: no scope ends
        // with a job still queued or running.
        self.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::Pool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_borrow_the_stack() {
        let mut pool = Pool::new(3);
        let mut data = vec![0u32; 64];
        pool.scoped(|scope| {
            for chunk in data.chunks_mut(16) {
                scope.execute(move || {
                    for x in chunk {
                        *x += 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn scoped_returns_the_closure_value() {
        let mut pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        let r = pool.scoped(|scope| {
            for _ in 0..8 {
                scope.execute(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        });
        assert_eq!(r, 42);
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn reusable_across_scopes() {
        let mut pool = Pool::new(2);
        assert_eq!(pool.thread_count(), 2);
        let mut total = 0u64;
        for round in 0..50u64 {
            let partial = AtomicUsize::new(0);
            pool.scoped(|scope| {
                for _ in 0..4 {
                    scope.execute(|| {
                        partial.fetch_add(round as usize, Ordering::Relaxed);
                    });
                }
            });
            total += partial.load(Ordering::Relaxed) as u64;
        }
        assert_eq!(total, (0..50u64).map(|r| 4 * r).sum());
    }

    #[test]
    fn job_panic_propagates_and_pool_survives() {
        let mut pool = Pool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("job failure"));
            });
        }));
        assert!(caught.is_err(), "the job panic must reach the caller");
        // Workers must still be alive for the next dispatch.
        let ok = AtomicUsize::new(0);
        pool.scoped(|scope| {
            scope.execute(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }
}
