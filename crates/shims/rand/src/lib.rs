//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64: deterministic,
//! portable, and statistically solid for graph generation — but not
//! bit-compatible with upstream `rand`'s ChaCha12 `StdRng`. See
//! `crates/shims/README.md` for the full caveat list.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into the full generator state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the "standard" distribution:
/// `[0, 1)` for floats, the full domain for integers and `bool`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types with a uniform sampler over `[low, high)` / `[low, high]`.
pub trait SampleUniform: Sized {
    /// Uniform draw; `inclusive` selects the closed upper bound.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as u64)
                    .wrapping_sub(low as u64)
                    .wrapping_add(inclusive as u64);
                assert!(span != 0, "cannot sample from an empty range");
                // Multiply-shift bounded sampling; the bias for the spans
                // used here (far below 2^32) is immeasurably small.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        low + (high - low) * f64::sample_standard(rng)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform(rng, start, end, true)
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Standard-distribution draw (`[0,1)` floats, uniform ints/bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
            let v = rng.gen_range(5u32..=6);
            assert!(v == 5 || v == 6);
            let f = rng.gen_range(2.0..=3.0);
            assert!((2.0..=3.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets of 0..10 hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
