//! Offline stand-in for `parking_lot`: the `Mutex` subset the
//! workspace uses, backed by `std::sync::Mutex` with parking_lot's
//! non-poisoning semantics (a panicked holder does not wedge peers).

#![warn(missing_docs)]

use std::sync::PoisonError;

/// Re-export of the guard type `lock` returns.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's `lock`/`into_inner`
/// signatures (no poisoning `Result`s).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7; // must not deadlock or panic
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
