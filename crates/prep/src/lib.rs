//! # parvc-prep — kernelization and component decomposition
//!
//! The engine in `parvc-core` applies its reduction rules *per tree
//! node*; on massive sparse graphs the winning move is to shrink the
//! instance **once, up front**. Kernelization is what makes MVC
//! tractable on real-world massive graphs (arXiv 1509.05870), and
//! splitting the remainder into connected components multiplies
//! parallelism: each component is an independent sub-search whose
//! optima simply add up (arXiv 2512.18334).
//!
//! The pipeline is a list of [`ReduceRule`] stages, each individually
//! toggleable through [`PrepConfig`] and reporting into [`PrepStats`]:
//!
//! 1. [`LowDegreeRule`] — exhaustive degree-0/1/2 elimination with the
//!    §IV-D conflict-resolution semantics of `parvc_core::reduce`;
//! 2. [`CrownRule`] — crown decomposition via the LP / Nemhauser–
//!    Trotter relaxation, built on the Hopcroft–Karp / Kőnig machinery
//!    in [`parvc_graph::matching`];
//! 3. [`HighDegreeRule`] — Buss-style elimination against a greedy
//!    upper bound.
//!
//! The stages run round-robin until none of them changes the instance,
//! then the residual is split into connected components
//! ([`ReducedInstance`]s, relabeled to `0..n` via
//! [`parvc_graph::ops::induced_subgraph`]). The resulting [`Kernel`]
//! carries a [`LiftTrace`]; [`Kernel::lift`] turns one sub-cover per
//! component back into a cover of the original graph, optimal whenever
//! the sub-covers are.
//!
//! Every stage is **optimum-preserving**:
//! `opt(G) = |forced| + Σ_c opt(component_c)`, which the workspace
//! property tests check against brute force for every rule subset.
//!
//! ```
//! use parvc_graph::gen;
//! use parvc_prep::{preprocess, PrepConfig};
//!
//! // A star is fully solved by preprocessing alone.
//! let g = gen::star(10);
//! let kernel = preprocess(&g, &PrepConfig::default());
//! assert!(kernel.is_fully_reduced());
//! assert_eq!(kernel.lift(&[]), vec![0]); // the hub
//! ```
//!
//! Part of the `parvc` workspace — see `ARCHITECTURE.md` at the
//! repository root for the prep → solve → lift data flow.

#![warn(missing_docs)]

mod kernel;
pub mod par;
mod rules;
mod state;

pub use kernel::{Kernel, LiftTrace, ReducedInstance};
pub use par::lp_lower_bound_exec;
pub use rules::{CrownRule, HighDegreeRule, LowDegreeRule, ReduceRule, RuleStats};
pub use state::{PrepState, VertexState};

use parvc_graph::{matching, CsrGraph, GraphBuilder};

/// The LP / Nemhauser–Trotter lower bound on `g`'s minimum vertex
/// cover: the optimum of the half-integral LP relaxation, rounded up.
///
/// This is the same machinery [`CrownRule`] uses to kernelize —
/// a minimum vertex cover of the bipartite *double cover* of `g`
/// (computed exactly through the Kőnig construction in
/// [`parvc_graph::matching`]) has twice the LP optimum's size — but
/// exposed as a standalone bound for callers that need a tighter
/// lower bound than a maximal matching: the in-search component
/// branching of `parvc-core` uses it to budget sibling sub-searches
/// (`SplitBound::Lp`).
///
/// Dominates the maximal-matching bound on every graph (any matching
/// is a feasible dual solution of the LP), at the cost of a
/// Hopcroft–Karp run on the doubled instance. Cardinality-only: for
/// vertex-weighted objectives use
/// [`parvc_graph::matching::min_weight_matching_bound`], which is
/// weight-sound.
///
/// ```
/// use parvc_graph::gen;
/// use parvc_prep::lp_lower_bound;
///
/// // C5: the LP optimum is 5/2 (all-half), so the bound rounds to 3
/// // — exactly the MVC — where a maximal matching only certifies 2.
/// assert_eq!(lp_lower_bound(&gen::cycle(5)), 3);
/// ```
pub fn lp_lower_bound(g: &CsrGraph) -> u64 {
    if g.num_edges() == 0 {
        return 0;
    }
    let n = g.num_vertices();
    let mut b = GraphBuilder::with_capacity(2 * n, (g.num_edges() * 2) as usize);
    for (u, v) in g.edges() {
        b.add_edge(u, n + v).expect("double-cover ids in range");
        b.add_edge(v, n + u).expect("double-cover ids in range");
    }
    let double_cover = b.build();
    let cover = matching::konig_cover(&double_cover).expect("double cover is bipartite");
    (cover.len() as u64).div_ceil(2)
}

/// The weight-sound lower bound on `g`'s minimum **weight** vertex
/// cover: the better of the min-weight matching bound and the
/// primal-dual LP dual value
/// ([`parvc_graph::matching::primal_dual_cover`]).
///
/// Both are sound (a matching's cheaper endpoints must be paid; the
/// dual is feasible for the covering LP, so weak duality bounds every
/// cover), so their maximum is too. The dual strictly wins whenever
/// edges outside the matching can still raise duals (e.g. paths with a
/// heavy middle); taking the max keeps the bound no worse than the old
/// matching-only budget on every instance. The in-search component
/// branching budgets weighted sibling sub-searches with this bound
/// under either `SplitBound`.
///
/// ```
/// use parvc_graph::{matching, CsrGraph};
/// use parvc_prep::weighted_lower_bound;
///
/// // Path 0-1-2, weights (1, 2, 1): the matching bound certifies 1,
/// // the primal-dual dual certifies the true optimum 2.
/// let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)])
///     .unwrap()
///     .with_weights(vec![1, 2, 1])
///     .unwrap();
/// assert_eq!(matching::min_weight_matching_bound(&g), 1);
/// assert_eq!(weighted_lower_bound(&g), 2);
/// ```
pub fn weighted_lower_bound(g: &CsrGraph) -> u64 {
    matching::min_weight_matching_bound(g).max(matching::primal_dual_cover(g).dual)
}

/// Which pipeline stages run, and how long the fixpoint may iterate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepConfig {
    /// Stage 1: exhaustive degree-0/1/2 elimination.
    pub low_degree: bool,
    /// Stage 2: crown decomposition / LP-based Nemhauser–Trotter.
    pub crown: bool,
    /// Stage 3: high-degree rule against a greedy upper bound.
    pub high_degree: bool,
    /// Stage 4: split the kernel into connected components.
    pub split_components: bool,
    /// Safety valve on the outer fixpoint (rarely reached: the rules
    /// monotonically shrink the instance).
    pub max_rounds: u32,
    /// Preserve the **weighted** optimum instead of the cardinality
    /// one. Degree-1/2 inclusion shortcuts gain weight-comparison
    /// gates, and the rules whose safety argument is inherently
    /// cardinality-based — crown/LP-NT (the unweighted double-cover
    /// relaxation) and the Buss high-degree rule (degree vs. a
    /// cardinality upper bound) — are *skipped*, each with an explicit
    /// [`RuleStats::note`] in the report rather than silently
    /// misapplied. Degree-0 and component splitting stay fully active
    /// (an isolated vertex is never in a minimum-weight cover; weights
    /// are carried through the component relabeling).
    pub weighted: bool,
}

impl Default for PrepConfig {
    fn default() -> Self {
        PrepConfig {
            low_degree: true,
            crown: true,
            high_degree: true,
            split_components: true,
            max_rounds: 64,
            weighted: false,
        }
    }
}

impl PrepConfig {
    /// A config with every stage disabled except component splitting —
    /// useful as a baseline and in rule-subset tests.
    pub fn split_only() -> Self {
        PrepConfig {
            low_degree: false,
            crown: false,
            high_degree: false,
            split_components: true,
            max_rounds: 1,
            weighted: false,
        }
    }
}

/// Statistics from one [`preprocess`] run.
#[derive(Debug, Clone)]
pub struct PrepStats {
    /// `|V|` of the input graph.
    pub original_vertices: u32,
    /// `|E|` of the input graph.
    pub original_edges: u64,
    /// Total vertices across the kernel components.
    pub kernel_vertices: u32,
    /// Total edges across the kernel components.
    pub kernel_edges: u64,
    /// Vertices forced into the cover by the rules.
    pub forced: u32,
    /// Vertices proven avoidable by the rules (plus edgeless residual
    /// vertices dropped at the split, which no cover needs).
    pub excluded: u32,
    /// Number of kernel components.
    pub components: u32,
    /// Vertices in the largest kernel component.
    pub largest_component: u32,
    /// Outer fixpoint rounds executed.
    pub rounds: u32,
    /// Per-rule fire counts, in pipeline order.
    pub rules: Vec<RuleStats>,
}

impl PrepStats {
    /// Fraction of the original vertices eliminated before search
    /// (1.0 = the rules solved the instance outright).
    pub fn elimination(&self) -> f64 {
        if self.original_vertices == 0 {
            return 1.0;
        }
        1.0 - self.kernel_vertices as f64 / self.original_vertices as f64
    }
}

/// Runs the staged preprocessing pipeline on `g`.
///
/// The returned [`Kernel`] holds the reduced instance split into
/// connected components plus the [`LiftTrace`] that maps per-component
/// sub-covers back to the original graph (the same walkthrough as
/// `examples/kernelize.rs`, in miniature):
///
/// ```
/// use parvc_graph::{gen, ops};
/// use parvc_prep::{preprocess, PrepConfig};
///
/// // A reduction-fodder path next to two dense communities.
/// let g = ops::disjoint_union(
///     &gen::path(30),
///     &gen::sparse_components(24, 2, 0.9, 7),
/// );
/// let kernel = preprocess(&g, &PrepConfig::default());
///
/// // The path is fully eliminated; the dense communities survive as
/// // independent relabeled sub-instances.
/// assert!(kernel.stats.elimination() > 0.0);
/// assert_eq!(kernel.components.len(), 2);
///
/// // Solving each component (here: its full vertex set — any valid
/// // sub-cover works) lifts back to a cover of the ORIGINAL graph.
/// let sub_covers: Vec<Vec<u32>> = kernel
///     .components
///     .iter()
///     .map(|c| (0..c.graph.num_vertices()).collect())
///     .collect();
/// let cover = kernel.lift(&sub_covers);
/// assert!(g.edges().all(|(u, v)| cover.contains(&u) || cover.contains(&v)));
/// ```
pub fn preprocess(g: &CsrGraph, cfg: &PrepConfig) -> Kernel {
    preprocess_traced(g, cfg, &parvc_obs::NOOP)
}

/// [`preprocess`] with a telemetry sink: records one `"prep"` span per
/// rule pass (named after the rule) plus the whole-pipeline span, a
/// `"split"` span around the residual component split, and the
/// headline reduction numbers as gauges. With the no-op sink this is
/// exactly [`preprocess`].
pub fn preprocess_traced(g: &CsrGraph, cfg: &PrepConfig, sink: &dyn parvc_obs::Sink) -> Kernel {
    let t_all = parvc_obs::SpanTimer::start(sink);
    let mut st = PrepState::new(g);
    // Rules whose safety argument only holds for the cardinality
    // objective are *skipped* in weighted mode, each leaving a noted
    // zero-fire stats row so the report shows the decision instead of
    // a silently misapplied rule.
    const WEIGHT_UNSOUND: &str = "skipped: unsound under vertex weights";
    let mut rules: Vec<Box<dyn ReduceRule>> = Vec::new();
    let mut skipped: Vec<RuleStats> = Vec::new();
    if cfg.low_degree {
        rules.push(Box::new(LowDegreeRule {
            weighted: cfg.weighted,
        }));
    }
    if cfg.crown {
        if cfg.weighted {
            let mut s = RuleStats::new(CrownRule.name());
            s.note = Some(WEIGHT_UNSOUND);
            skipped.push(s);
        } else {
            rules.push(Box::new(CrownRule));
        }
    }
    if cfg.high_degree {
        if cfg.weighted {
            let mut s = RuleStats::new(HighDegreeRule.name());
            s.note = Some(WEIGHT_UNSOUND);
            skipped.push(s);
        } else {
            rules.push(Box::new(HighDegreeRule));
        }
    }
    let mut rule_stats: Vec<RuleStats> = rules.iter().map(|r| RuleStats::new(r.name())).collect();

    let mut rounds = 0;
    while !rules.is_empty() {
        rounds += 1;
        let mut changed = false;
        for (rule, stats) in rules.iter_mut().zip(rule_stats.iter_mut()) {
            stats.passes += 1;
            let before = stats.eliminated();
            let t_pass = parvc_obs::SpanTimer::start(sink);
            if rule.apply(&mut st, stats) {
                changed = true;
            }
            t_pass.finish(sink, "prep", rule.name(), 0, stats.eliminated() - before);
        }
        if !changed || rounds >= cfg.max_rounds {
            break;
        }
    }
    rule_stats.extend(skipped);
    debug_assert!(st.check_consistency().is_ok());

    let live = st.live_ids();
    let t_split = parvc_obs::SpanTimer::start(sink);
    let components = kernel::split_residual(g, &live, cfg.split_components);
    t_split.finish(sink, "split", "split-residual", 0, components.len() as u64);
    let (forced, excluded) = st.into_decisions();
    let kernel_vertices: u32 = components.iter().map(|c| c.graph.num_vertices()).sum();
    let kernel_edges: u64 = components.iter().map(|c| c.graph.num_edges()).sum();
    let stats = PrepStats {
        original_vertices: g.num_vertices(),
        original_edges: g.num_edges(),
        kernel_vertices,
        kernel_edges,
        forced: forced.len() as u32,
        excluded: g.num_vertices() - kernel_vertices - forced.len() as u32,
        components: components.len() as u32,
        largest_component: components
            .iter()
            .map(|c| c.graph.num_vertices())
            .max()
            .unwrap_or(0),
        rounds,
        rules: rule_stats,
    };
    t_all.finish(sink, "prep", "preprocess", 0, stats.kernel_vertices as u64);
    if sink.enabled() {
        sink.gauge("prep.rounds", rounds as u64);
        sink.gauge("prep.forced", stats.forced as u64);
        sink.gauge("prep.excluded", stats.excluded as u64);
        sink.gauge("prep.components", stats.components as u64);
        for c in &components {
            sink.observe("prep.component_size", c.graph.num_vertices() as u64);
        }
    }
    Kernel {
        components,
        trace: LiftTrace {
            forced,
            excluded,
            original_vertices: g.num_vertices(),
        },
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::gen;

    /// Bitmask brute force for the safety oracle (n ≤ 20).
    fn brute_opt(g: &CsrGraph) -> u32 {
        let n = g.num_vertices();
        assert!(n <= 20, "brute force oracle limited to 20 vertices");
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let mut best = n;
        for mask in 0u32..(1 << n) {
            let size = mask.count_ones();
            if size >= best {
                continue;
            }
            if edges
                .iter()
                .all(|&(u, v)| mask & (1 << u) != 0 || mask & (1 << v) != 0)
            {
                best = size;
            }
        }
        best
    }

    fn is_cover(g: &CsrGraph, cover: &[u32]) -> bool {
        let mut in_cover = vec![false; g.num_vertices() as usize];
        for &v in cover {
            in_cover[v as usize] = true;
        }
        g.edges()
            .all(|(u, v)| in_cover[u as usize] || in_cover[v as usize])
    }

    /// Exhaustively solve the kernel components and lift.
    fn solve_via_prep(g: &CsrGraph, cfg: &PrepConfig) -> Vec<u32> {
        let kernel = preprocess(g, cfg);
        let subs: Vec<Vec<u32>> = kernel
            .components
            .iter()
            .map(|inst| {
                let opt = brute_opt(&inst.graph);
                // Recover a witness of that size.
                let n = inst.graph.num_vertices();
                let edges: Vec<(u32, u32)> = inst.graph.edges().collect();
                (0u32..(1 << n))
                    .find(|mask| {
                        mask.count_ones() == opt
                            && edges
                                .iter()
                                .all(|&(u, v)| mask & (1 << u) != 0 || mask & (1 << v) != 0)
                    })
                    .map(|mask| (0..n).filter(|&v| mask & (1 << v) != 0).collect())
                    .expect("a witness of optimal size exists")
            })
            .collect();
        kernel.lift(&subs)
    }

    #[test]
    fn preprocessing_preserves_the_optimum_for_every_rule_subset() {
        let graphs: Vec<(String, CsrGraph)> = (0..4u64)
            .flat_map(|seed| {
                vec![
                    (format!("gnp-{seed}"), gen::gnp(13, 0.3, seed)),
                    (format!("ba-{seed}"), gen::barabasi_albert(14, 2, seed)),
                    (format!("grid-{seed}"), gen::grid2d(3, 4)),
                    (
                        format!("comp-{seed}"),
                        gen::sparse_components(15, 3, 0.5, seed),
                    ),
                ]
            })
            .collect();
        for (name, g) in &graphs {
            let opt = brute_opt(g);
            for mask in 0..8u32 {
                let cfg = PrepConfig {
                    low_degree: mask & 1 != 0,
                    crown: mask & 2 != 0,
                    high_degree: mask & 4 != 0,
                    split_components: true,
                    ..PrepConfig::default()
                };
                let cover = solve_via_prep(g, &cfg);
                assert!(is_cover(g, &cover), "{name} mask {mask}: not a cover");
                assert_eq!(
                    cover.len() as u32,
                    opt,
                    "{name} mask {mask}: lifted cover not optimal"
                );
            }
        }
    }

    /// Bitmask brute force over vertex weights (n ≤ 20).
    fn brute_weighted_opt(g: &CsrGraph) -> u64 {
        let n = g.num_vertices();
        assert!(
            n <= 20,
            "weighted brute force oracle limited to 20 vertices"
        );
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let mut best: u64 = (0..n).map(|v| g.weight(v)).sum();
        for mask in 0u32..(1 << n) {
            if edges
                .iter()
                .all(|&(u, v)| mask & (1 << u) != 0 || mask & (1 << v) != 0)
            {
                let w = (0..n)
                    .filter(|&v| mask & (1 << v) != 0)
                    .map(|v| g.weight(v))
                    .sum();
                best = best.min(w);
            }
        }
        best
    }

    #[test]
    fn weighted_prep_preserves_the_weighted_optimum() {
        // Weighted pipeline: forced + optimally-solved components must
        // reproduce the weighted optimum, with degree-derived weights
        // (hubs expensive — the regime where the unweighted rules
        // would be wrong) and uniform random weights.
        for seed in 0..4u64 {
            for g in [
                parvc_graph::gen::with_degree_weights(parvc_graph::gen::gnp(13, 0.25, seed)),
                parvc_graph::gen::with_uniform_weights(
                    parvc_graph::gen::sparse_components(15, 3, 0.5, seed),
                    10,
                    seed,
                ),
                parvc_graph::gen::with_degree_weights(parvc_graph::gen::barabasi_albert(
                    14, 2, seed,
                )),
            ] {
                let opt = brute_weighted_opt(&g);
                let cfg = PrepConfig {
                    weighted: true,
                    ..PrepConfig::default()
                };
                let kernel = preprocess(&g, &cfg);
                // Components carry the relabeled weights.
                for inst in &kernel.components {
                    for (new, &old) in inst.old_ids.iter().enumerate() {
                        assert_eq!(inst.graph.weight(new as u32), g.weight(old));
                    }
                }
                // Solve each component by weighted brute force, lift.
                let subs: Vec<Vec<u32>> = kernel
                    .components
                    .iter()
                    .map(|inst| {
                        let sub_opt = brute_weighted_opt(&inst.graph);
                        let n = inst.graph.num_vertices();
                        let edges: Vec<(u32, u32)> = inst.graph.edges().collect();
                        (0u32..(1 << n))
                            .find(|mask| {
                                edges
                                    .iter()
                                    .all(|&(u, v)| mask & (1 << u) != 0 || mask & (1 << v) != 0)
                                    && (0..n)
                                        .filter(|&v| mask & (1 << v) != 0)
                                        .map(|v| inst.graph.weight(v))
                                        .sum::<u64>()
                                        == sub_opt
                            })
                            .map(|mask| (0..n).filter(|&v| mask & (1 << v) != 0).collect())
                            .expect("a witness of optimal weight exists")
                    })
                    .collect();
                let cover = kernel.lift(&subs);
                assert!(is_cover(&g, &cover), "seed {seed}: not a cover");
                assert_eq!(
                    g.cover_weight(&cover),
                    opt,
                    "seed {seed}: weighted prep changed the optimum"
                );
                // The weight-unsound rules must be reported as skipped.
                for r in &kernel.stats.rules {
                    if r.name != "degree-0/1/2" {
                        assert!(r.note.is_some(), "{} ran in weighted mode", r.name);
                        assert_eq!(r.eliminated(), 0);
                    }
                }
            }
        }
    }

    #[test]
    fn lp_bound_sandwiches_between_matching_and_optimum() {
        for seed in 0..8 {
            let g = gen::gnp(14, 0.3, seed);
            let lp = lp_lower_bound(&g);
            let matching = parvc_graph::matching::greedy_maximal_matching(&g).len() as u64;
            let opt = brute_opt(&g) as u64;
            assert!(
                lp >= matching,
                "seed {seed}: LP bound {lp} below matching bound {matching}"
            );
            assert!(
                lp <= opt,
                "seed {seed}: LP bound {lp} exceeds optimum {opt}"
            );
        }
        // Odd cycles are the classic case where LP strictly beats
        // matching: ceil(n/2) vs floor(n/2).
        assert_eq!(lp_lower_bound(&gen::cycle(7)), 4);
        assert_eq!(
            parvc_graph::matching::greedy_maximal_matching(&gen::cycle(7)).len(),
            3
        );
        assert_eq!(lp_lower_bound(&CsrGraph::from_edges(5, &[]).unwrap()), 0);
    }

    #[test]
    fn full_pipeline_solves_trees_outright() {
        let g = gen::barabasi_albert(200, 1, 5); // BA with m=1 is a tree
        let kernel = preprocess(&g, &PrepConfig::default());
        assert!(kernel.is_fully_reduced());
        assert!(kernel.stats.elimination() >= 0.999);
        let cover = kernel.lift(&[]);
        assert!(is_cover(&g, &cover));
    }

    #[test]
    fn tree_elimination_scales_to_large_instances() {
        // The Scale::Massive acceptance family in miniature: ≥90%
        // elimination on tree-like graphs, at any size.
        let g = gen::barabasi_albert(50_000, 1, 9);
        let kernel = preprocess(&g, &PrepConfig::default());
        assert!(
            kernel.stats.elimination() >= 0.9,
            "only {:.1}% eliminated",
            kernel.stats.elimination() * 100.0
        );
        assert!(is_cover(
            &g,
            &kernel.lift(&vec![Vec::new(); kernel.components.len()])
        ));
    }

    #[test]
    fn component_split_produces_independent_instances() {
        let g = gen::sparse_components(60, 6, 0.6, 3);
        let kernel = preprocess(
            &g,
            &PrepConfig {
                low_degree: false,
                crown: false,
                high_degree: false,
                ..PrepConfig::default()
            },
        );
        assert!(kernel.components.len() >= 6);
        assert_eq!(kernel.stats.components as usize, kernel.components.len());
        // Relabelings are disjoint and in range.
        let mut seen = vec![false; g.num_vertices() as usize];
        for inst in &kernel.components {
            for &old in &inst.old_ids {
                assert!(!seen[old as usize], "vertex {old} in two components");
                seen[old as usize] = true;
            }
        }
    }

    #[test]
    fn stats_account_for_every_vertex() {
        for seed in 0..4 {
            let g = gen::pace_like(80, 4, seed);
            let kernel = preprocess(&g, &PrepConfig::default());
            let s = &kernel.stats;
            assert_eq!(
                s.forced + s.excluded + s.kernel_vertices,
                s.original_vertices,
                "seed {seed}"
            );
            assert_eq!(s.forced as usize, kernel.trace.forced.len());
            assert!(s.elimination() >= 0.0 && s.elimination() <= 1.0);
        }
    }

    #[test]
    fn empty_and_edgeless_inputs() {
        let empty = CsrGraph::from_edges(0, &[]).unwrap();
        let kernel = preprocess(&empty, &PrepConfig::default());
        assert!(kernel.is_fully_reduced());
        assert_eq!(kernel.lift(&[]), Vec::<u32>::new());
        assert_eq!(kernel.stats.elimination(), 1.0);

        let edgeless = CsrGraph::from_edges(9, &[]).unwrap();
        let kernel = preprocess(&edgeless, &PrepConfig::default());
        assert!(kernel.is_fully_reduced());
        assert_eq!(kernel.lift(&[]), Vec::<u32>::new());
    }
}
