//! The kernelization rules, each a [`ReduceRule`] implementation.
//!
//! Every rule is **optimum-preserving**: after its application there is
//! an optimal cover of the original graph consisting of the forced
//! vertices plus an optimal cover of the residual instance, and the
//! excluded vertices appear in none of its edges. The rules reuse the
//! §IV-D conflict-resolution semantics of `parvc_core::reduce`:
//! eligible vertices are snapshotted, then applied in ascending id with
//! a liveness/degree recheck, so a vertex invalidated by an earlier
//! (smaller-id) application is skipped.

use std::collections::BTreeSet;

use parvc_graph::{matching, GraphBuilder, VertexId};

use crate::state::PrepState;

/// Per-rule firing statistics, reported in
/// [`PrepStats`](crate::PrepStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleStats {
    /// The rule's display name.
    pub name: &'static str,
    /// Vertices the rule forced into the cover.
    pub covered: u64,
    /// Vertices the rule dropped as avoidable.
    pub excluded: u64,
    /// Pipeline passes the rule ran in.
    pub passes: u32,
    /// Why the rule did not run, when the pipeline disabled it (e.g.
    /// weight-unsound rules under
    /// [`PrepConfig::weighted`](crate::PrepConfig::weighted)).
    /// `None` for rules that ran.
    pub note: Option<&'static str>,
}

impl RuleStats {
    /// Zeroed stats for `name`.
    pub fn new(name: &'static str) -> Self {
        RuleStats {
            name,
            covered: 0,
            excluded: 0,
            passes: 0,
            note: None,
        }
    }

    /// Total vertices this rule eliminated.
    pub fn eliminated(&self) -> u64 {
        self.covered + self.excluded
    }
}

/// One stage of the preprocessing pipeline. Stages are individually
/// toggleable through [`PrepConfig`](crate::PrepConfig) and run
/// round-robin until none of them changes the instance.
pub trait ReduceRule {
    /// Display name used in stats and CLI output.
    fn name(&self) -> &'static str;

    /// Runs the rule once over the current state (a rule may iterate to
    /// its own internal fixpoint). Returns whether anything changed.
    fn apply(&mut self, st: &mut PrepState<'_>, stats: &mut RuleStats) -> bool;
}

/// Exhaustive degree-0/1/2 elimination — the up-front counterpart of
/// the engine's in-loop rules (Figure 1 lines 14–30):
///
/// * degree 0: the vertex covers nothing — drop it;
/// * degree 1: taking the neighbor is never worse than taking the leaf;
/// * degree 2 in a triangle: two of the triangle must be covered and
///   the two neighbors are never worse.
///
/// With `weighted` set, the degree-1 and degree-2 inclusion shortcuts
/// apply only when the taken vertices cost no more than the vertex
/// they stand in for (`w(u) ≤ w(v)`) — the same gates as the engine's
/// weighted `reduce` (see `parvc_core::reduce`). Degree-0 elimination
/// needs no gate: an isolated vertex is in no minimum-weight cover.
pub struct LowDegreeRule {
    /// Preserve the weighted optimum (gate the inclusion shortcuts).
    pub weighted: bool,
}

impl ReduceRule for LowDegreeRule {
    fn name(&self) -> &'static str {
        "degree-0/1/2"
    }

    fn apply(&mut self, st: &mut PrepState<'_>, stats: &mut RuleStats) -> bool {
        // One full scan seeds the per-degree pools; afterwards a vertex
        // can only (re-)enter a rule's range through a degree
        // decrement, and every decrement re-pools it at its new degree.
        // Each round *drains* its pool into the ascending-id snapshot:
        // entries that fail the liveness/degree recheck are stale
        // forever at that degree (degrees only fall), and a degree-2
        // vertex that fails the triangle test keeps the same two
        // neighbors for as long as its degree stays 2, so dropping it
        // is equivalent to the full rescan — while peeling a
        // 100k-vertex chain stays linear instead of quadratic.
        let mut pools = Pools::seed(st);
        let mut changed_any = false;
        loop {
            let mut changed = false;
            while degree_zero_round(st, &mut pools, stats) {
                changed = true;
            }
            while degree_one_round(st, &mut pools, stats, self.weighted) {
                changed = true;
            }
            while degree_two_triangle_round(st, &mut pools, stats, self.weighted) {
                changed = true;
            }
            if !changed {
                return changed_any;
            }
            changed_any = true;
        }
    }
}

/// Candidate vertices per rule degree. `BTreeSet` keeps each round's
/// drained snapshot in ascending id order — the §IV-D tie-break.
struct Pools {
    by_degree: [BTreeSet<VertexId>; 3],
}

impl Pools {
    fn seed(st: &PrepState<'_>) -> Self {
        let mut by_degree: [BTreeSet<VertexId>; 3] = Default::default();
        for v in st.live_ids() {
            let d = st.degree(v);
            if d <= 2 {
                by_degree[d as usize].insert(v);
            }
        }
        Pools { by_degree }
    }

    /// Forces `u` into the cover and re-pools its neighbors whose
    /// degree dropped into rule range.
    fn take_into_cover(&mut self, st: &mut PrepState<'_>, u: VertexId) {
        let touched: Vec<VertexId> = st.live_neighbors(u).collect();
        st.take_into_cover(u);
        for w in touched {
            let d = st.degree(w);
            if d <= 2 {
                self.by_degree[d as usize].insert(w);
            }
        }
    }

    fn drain(&mut self, degree: usize) -> BTreeSet<VertexId> {
        std::mem::take(&mut self.by_degree[degree])
    }
}

fn degree_zero_round(st: &mut PrepState<'_>, pools: &mut Pools, stats: &mut RuleStats) -> bool {
    let mut changed = false;
    for v in pools.drain(0) {
        if st.is_live(v) && st.degree(v) == 0 {
            st.exclude_isolated(v);
            stats.excluded += 1;
            changed = true;
        }
    }
    changed
}

fn degree_one_round(
    st: &mut PrepState<'_>,
    pools: &mut Pools,
    stats: &mut RuleStats,
    weighted: bool,
) -> bool {
    let mut changed = false;
    for v in pools.drain(1) {
        // Recheck: an earlier (smaller-id) application may have removed
        // v's neighbor or isolated v — the §IV-D tie-break.
        if !st.is_live(v) || st.degree(v) != 1 {
            continue;
        }
        let u = st
            .live_neighbors(v)
            .next()
            .expect("degree-one vertex has a live neighbor");
        // Weighted gate: swapping the leaf for its neighbor must not
        // increase the cover weight.
        if weighted && st.graph().weight(u) > st.graph().weight(v) {
            continue;
        }
        pools.take_into_cover(st, u);
        stats.covered += 1;
        changed = true;
    }
    changed
}

fn degree_two_triangle_round(
    st: &mut PrepState<'_>,
    pools: &mut Pools,
    stats: &mut RuleStats,
    weighted: bool,
) -> bool {
    let mut changed = false;
    for v in pools.drain(2) {
        if !st.is_live(v) || st.degree(v) != 2 {
            continue;
        }
        let mut live = st.live_neighbors(v);
        let u = live.next().expect("degree-two vertex has live neighbors");
        let w = live.next().expect("degree-two vertex has live neighbors");
        drop(live);
        // Weighted gate: both triangle partners must cost ≤ w(v) for
        // the swap argument to bound the weight.
        if weighted && st.graph().weight(u).max(st.graph().weight(w)) > st.graph().weight(v) {
            continue;
        }
        // Both are live, so the edge survives iff it existed originally.
        if st.graph().has_edge(u, w) {
            pools.take_into_cover(st, u);
            pools.take_into_cover(st, w);
            stats.covered += 2;
            changed = true;
        }
    }
    changed
}

/// Crown decomposition via the LP / Nemhauser–Trotter relaxation.
///
/// Builds the bipartite *double cover* `B` of the residual instance
/// (left and right copy per live vertex, each live edge `{u, v}`
/// becoming `{Lu, Rv}` and `{Lv, Ru}`), takes a minimum vertex cover of
/// `B` through the Kőnig construction in [`parvc_graph::matching`], and
/// reads off the optimal half-integral LP solution
/// `x_v = |{Lv, Rv} ∩ C| / 2`. The NT theorem gives persistence for
/// any such optimum: every `x_v = 1` vertex is in *some* minimum cover,
/// every `x_v = 0` vertex is avoidable, and the optimum of the residual
/// drops by exactly the number of forced vertices.
pub struct CrownRule;

impl ReduceRule for CrownRule {
    fn name(&self) -> &'static str {
        "crown (LP/NT)"
    }

    fn apply(&mut self, st: &mut PrepState<'_>, stats: &mut RuleStats) -> bool {
        if st.live_edges() == 0 {
            return false;
        }
        let live = st.live_ids();
        let l = live.len() as u32;
        let mut pos = vec![u32::MAX; st.graph().num_vertices() as usize];
        for (i, &v) in live.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        let mut b = GraphBuilder::with_capacity(2 * l, (st.live_edges() * 2) as usize);
        for &u in &live {
            let targets: Vec<VertexId> = st.live_neighbors(u).filter(|&v| u < v).collect();
            for v in targets {
                b.add_edge(pos[u as usize], l + pos[v as usize])
                    .expect("double-cover ids in range");
                b.add_edge(pos[v as usize], l + pos[u as usize])
                    .expect("double-cover ids in range");
            }
        }
        let double_cover = b.build();
        let cover = matching::konig_cover(&double_cover).expect("double cover is bipartite");
        let mut copies = vec![0u8; l as usize];
        for id in cover {
            copies[(id % l) as usize] += 1;
        }
        let mut changed = false;
        // x = 1: force first — this is what isolates the x = 0 side.
        for (i, &n) in copies.iter().enumerate() {
            if n == 2 {
                st.take_into_cover(live[i]);
                stats.covered += 1;
                changed = true;
            }
        }
        // x = 0: every remaining neighbor carries x = 1 (LP
        // feasibility), so these are isolated now and safely avoidable.
        for (i, &n) in copies.iter().enumerate() {
            if n == 0 && st.is_live(live[i]) {
                debug_assert_eq!(st.degree(live[i]), 0, "x=0 vertex still has live edges");
                st.exclude_isolated(live[i]);
                stats.excluded += 1;
                changed = true;
            }
        }
        changed
    }
}

/// High-degree (Buss-style) rule against a greedy upper bound: a live
/// vertex whose degree exceeds the size of a *known* cover of the
/// residual must be in every optimal residual cover (excluding it would
/// force all of its neighbors in, already beating the known cover), so
/// it joins the cover.
///
/// This is deliberately stricter than the engine's in-loop
/// `d(v) > best − |S| − 1` threshold: preprocessing must preserve the
/// exact optimum, not merely the ability to improve on `best`.
pub struct HighDegreeRule;

impl ReduceRule for HighDegreeRule {
    fn name(&self) -> &'static str {
        "high-degree"
    }

    fn apply(&mut self, st: &mut PrepState<'_>, stats: &mut RuleStats) -> bool {
        if st.live_edges() == 0 {
            return false;
        }
        let ub = greedy_cover_upper_bound(st) as i64;
        let snapshot: Vec<VertexId> = st
            .live_ids()
            .into_iter()
            .filter(|&v| st.degree(v) as i64 > ub)
            .collect();
        let mut changed = false;
        // Forcing earlier snapshot entries lowers both the residual
        // optimum and the snapshot degrees by at most the number of
        // applications, so the remaining entries stay safe without a
        // degree recheck (see the safety note in the module docs).
        for v in snapshot {
            if !st.is_live(v) {
                continue;
            }
            st.take_into_cover(v);
            stats.covered += 1;
            changed = true;
        }
        changed
    }
}

/// Size of the greedy max-degree cover of the residual instance — the
/// upper bound the high-degree rule compares against. Bucket-queue
/// implementation, `O(|V| + |E| + max_degree)`.
fn greedy_cover_upper_bound(st: &PrepState<'_>) -> u32 {
    let g = st.graph();
    let n = g.num_vertices() as usize;
    // -1 = not part of the residual (or already taken by the greedy).
    let mut deg: Vec<i64> = (0..n as u32)
        .map(|v| {
            if st.is_live(v) {
                st.degree(v) as i64
            } else {
                -1
            }
        })
        .collect();
    let maxd = deg.iter().copied().max().unwrap_or(0).max(0) as usize;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); maxd + 1];
    for (v, &d) in deg.iter().enumerate() {
        if d > 0 {
            buckets[d as usize].push(v as VertexId);
        }
    }
    let mut cover = 0u32;
    let mut d = maxd;
    while d >= 1 {
        let Some(v) = buckets[d].pop() else {
            d -= 1;
            continue;
        };
        if deg[v as usize] != d as i64 {
            continue; // stale entry: the vertex was re-bucketed lower
        }
        deg[v as usize] = -1;
        cover += 1;
        for &u in g.neighbors(v) {
            if deg[u as usize] > 0 {
                deg[u as usize] -= 1;
                if deg[u as usize] > 0 {
                    buckets[deg[u as usize] as usize].push(u);
                }
            }
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::gen;

    fn run(rule: &mut dyn ReduceRule, st: &mut PrepState<'_>) -> RuleStats {
        let mut stats = RuleStats::new(rule.name());
        while rule.apply(st, &mut stats) {}
        st.check_consistency().unwrap();
        stats
    }

    #[test]
    fn low_degree_solves_paths_and_stars() {
        let g = gen::path(10);
        let mut st = PrepState::new(&g);
        run(&mut LowDegreeRule { weighted: false }, &mut st);
        assert_eq!(st.live_vertices(), 0);
        assert_eq!(st.forced().len(), 5); // optimal for P10

        let g = gen::star(8);
        let mut st = PrepState::new(&g);
        run(&mut LowDegreeRule { weighted: false }, &mut st);
        assert_eq!(st.forced(), &[0], "the hub joins the cover");
        assert_eq!(st.live_vertices(), 0);
    }

    #[test]
    fn low_degree_conflict_resolution_matches_reduce() {
        // Isolated edge: both endpoints degree one; vertex 0 acts first,
        // covering its neighbor 1 — the §IV-D tie-break.
        let g = parvc_graph::CsrGraph::from_edges(2, &[(0, 1)]).unwrap();
        let mut st = PrepState::new(&g);
        run(&mut LowDegreeRule { weighted: false }, &mut st);
        assert_eq!(st.forced(), &[1]);
        assert_eq!(st.excluded(), &[0]);
    }

    #[test]
    fn triangle_rule_takes_the_partners() {
        // K3: only the smallest id applies; its neighbors {1,2} join.
        let g = gen::complete(3);
        let mut st = PrepState::new(&g);
        let stats = run(&mut LowDegreeRule { weighted: false }, &mut st);
        assert_eq!(st.forced(), &[1, 2]);
        assert_eq!(stats.covered, 2);
    }

    #[test]
    fn crown_clears_stars_and_leaves_cycles_alone() {
        // Star: LP puts x=1 on the hub, x=0 on the leaves.
        let g = gen::star(9);
        let mut st = PrepState::new(&g);
        let stats = run(&mut CrownRule, &mut st);
        assert_eq!(st.forced(), &[0]);
        assert_eq!(stats.excluded, 8);
        assert_eq!(st.live_vertices(), 0);

        // Odd cycle: all-half is the unique LP optimum — nothing fires.
        let g = gen::cycle(5);
        let mut st = PrepState::new(&g);
        let stats = run(&mut CrownRule, &mut st);
        assert_eq!(stats.eliminated(), 0);
        assert_eq!(st.live_vertices(), 5);
    }

    #[test]
    fn high_degree_takes_outlier_hubs() {
        // A hub joined to 9 leaves that also form a sparse cycle among
        // themselves: greedy UB is small, hub degree exceeds it.
        let mut edges: Vec<(u32, u32)> = (1..10).map(|v| (0, v)).collect();
        edges.extend((1..9).map(|v| (v, v + 1)));
        let g = parvc_graph::CsrGraph::from_edges(10, &edges).unwrap();
        let mut st = PrepState::new(&g);
        let stats = run(&mut HighDegreeRule, &mut st);
        assert!(st.forced().contains(&0), "hub must be forced");
        assert!(stats.covered >= 1);
    }

    #[test]
    fn greedy_upper_bound_is_a_cover_size() {
        for seed in 0..6 {
            let g = gen::gnp(30, 0.2, seed);
            let st = PrepState::new(&g);
            let ub = greedy_cover_upper_bound(&st);
            // The greedy bound can never beat the matching lower bound.
            let lb = matching::greedy_maximal_matching(&g).len() as u32;
            assert!(ub >= lb, "seed {seed}: ub {ub} below matching bound {lb}");
            assert!(ub <= g.num_vertices());
        }
    }
}
