//! The preprocessing output: reduced per-component instances plus the
//! trace that lifts sub-covers back to the original graph.

use parvc_graph::{ops, CsrGraph, GraphBuilder, VertexId};

use crate::PrepStats;

/// One connected component of the kernel, relabeled to `0..n`.
pub struct ReducedInstance {
    /// The component as a standalone graph.
    pub graph: CsrGraph,
    /// `old_ids[new_id]` = the vertex's id in the original graph.
    pub old_ids: Vec<VertexId>,
}

/// Everything needed to reconstruct a cover of the original graph from
/// per-component sub-covers.
#[derive(Debug, Clone)]
pub struct LiftTrace {
    /// Vertices the rules forced into the cover (original ids).
    pub forced: Vec<VertexId>,
    /// Vertices the rules proved avoidable (original ids).
    pub excluded: Vec<VertexId>,
    /// `|V|` of the original graph, for validation.
    pub original_vertices: u32,
}

/// The kernelized problem: independent reduced components plus the
/// lift trace. Produced by [`preprocess`](crate::preprocess).
pub struct Kernel {
    /// The kernel, split into connected components (or a single
    /// instance when splitting is disabled). Edgeless residual
    /// vertices are dropped — no cover ever needs them.
    pub components: Vec<ReducedInstance>,
    /// The reconstruction trace.
    pub trace: LiftTrace,
    /// Pipeline statistics (per-rule fire counts, sizes, rounds).
    pub stats: PrepStats,
}

impl Kernel {
    /// Reconstructs a cover of the **original** graph from one
    /// sub-cover per component (in component-local ids, as returned by
    /// solving [`ReducedInstance::graph`]): the forced vertices plus
    /// every sub-cover mapped through its component's relabeling.
    ///
    /// If each sub-cover is optimal for its component, the lifted cover
    /// is optimal for the original graph.
    ///
    /// # Panics
    ///
    /// Panics if the number of sub-covers does not match the number of
    /// components or a sub-cover contains an out-of-range vertex.
    pub fn lift(&self, sub_covers: &[Vec<VertexId>]) -> Vec<VertexId> {
        assert_eq!(
            sub_covers.len(),
            self.components.len(),
            "one sub-cover per component"
        );
        let mut cover = self.trace.forced.clone();
        for (inst, sub) in self.components.iter().zip(sub_covers) {
            for &v in sub {
                cover.push(inst.old_ids[v as usize]);
            }
        }
        cover.sort_unstable();
        debug_assert!(
            cover.windows(2).all(|w| w[0] < w[1]),
            "lifted cover has duplicate vertices"
        );
        cover
    }

    /// Total vertices across the kernel components.
    pub fn kernel_vertices(&self) -> u32 {
        self.components.iter().map(|c| c.graph.num_vertices()).sum()
    }

    /// Total edges across the kernel components.
    pub fn kernel_edges(&self) -> u64 {
        self.components.iter().map(|c| c.graph.num_edges()).sum()
    }

    /// Whether the rules solved the instance outright (empty kernel).
    pub fn is_fully_reduced(&self) -> bool {
        self.components.is_empty()
    }

    /// The kernel as one graph (the disjoint union of the components,
    /// in order) — what `parvc prep --out` writes as DIMACS. Weighted
    /// components keep their weights (shifted with the ids), so a
    /// weighted kernel round-trips through the DIMACS `n`-lines.
    pub fn kernel_graph(&self) -> CsrGraph {
        let n = self.kernel_vertices();
        let mut b = GraphBuilder::with_capacity(n, self.kernel_edges() as usize);
        let mut shift = 0u32;
        for inst in &self.components {
            for (u, v) in inst.graph.edges() {
                b.add_edge(u + shift, v + shift)
                    .expect("shifted kernel ids in range");
            }
            shift += inst.graph.num_vertices();
        }
        let union = b.build();
        if self.components.iter().all(|c| !c.graph.is_weighted()) {
            return union;
        }
        let weights: Vec<u64> = self
            .components
            .iter()
            .flat_map(|c| (0..c.graph.num_vertices()).map(|v| c.graph.weight(v)))
            .collect();
        union
            .with_weights(weights)
            .expect("component weights are valid")
    }
}

/// Splits the residual (live) part of the graph into relabeled
/// standalone instances. With `split` off, the whole residual becomes a
/// single instance; either way, edgeless components are dropped.
pub fn split_residual(g: &CsrGraph, live: &[VertexId], split: bool) -> Vec<ReducedInstance> {
    if live.is_empty() {
        return Vec::new();
    }
    let (residual, _) = ops::induced_subgraph(g, live);
    if !split {
        if residual.num_edges() == 0 {
            return Vec::new();
        }
        return vec![ReducedInstance {
            graph: residual,
            old_ids: live.to_vec(),
        }];
    }
    let (comp_of, count) = ops::connected_components(&residual);
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); count as usize];
    for (rid, &c) in comp_of.iter().enumerate() {
        members[c as usize].push(rid as VertexId);
    }
    members
        .into_iter()
        .filter(|keep| keep.len() > 1)
        .map(|keep| {
            let (graph, _) = ops::induced_subgraph(&residual, &keep);
            let old_ids = keep.iter().map(|&rid| live[rid as usize]).collect();
            ReducedInstance { graph, old_ids }
        })
        .filter(|inst| inst.graph.num_edges() > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::gen;

    #[test]
    fn split_drops_isolated_and_relabels() {
        // {0,1,2} triangle, {3,4} edge, {5} isolated.
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (3, 4)]).unwrap();
        let live: Vec<u32> = (0..6).collect();
        let comps = split_residual(&g, &live, true);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].graph.num_vertices(), 3);
        assert_eq!(comps[0].old_ids, vec![0, 1, 2]);
        assert_eq!(comps[1].graph.num_vertices(), 2);
        assert_eq!(comps[1].old_ids, vec![3, 4]);
        assert!(comps[1].graph.has_edge(0, 1));
    }

    #[test]
    fn split_respects_partial_liveness() {
        let g = gen::path(5); // 0-1-2-3-4
        let comps = split_residual(&g, &[0, 1, 3, 4], true);
        assert_eq!(comps.len(), 2, "removing 2 cuts the path");
        assert_eq!(comps[0].old_ids, vec![0, 1]);
        assert_eq!(comps[1].old_ids, vec![3, 4]);
    }

    #[test]
    fn unsplit_residual_is_one_instance() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let comps = split_residual(&g, &[0, 1, 2, 3, 4], false);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].graph.num_vertices(), 5);
        assert_eq!(comps[0].graph.num_edges(), 2);
    }
}
