//! The mutable working instance the preprocessing rules operate on.
//!
//! Unlike the engine's `TreeNode` (which only distinguishes *live* from
//! *removed into the cover*), kernelization needs a third disposition:
//! a vertex can be proven **avoidable** — some optimal cover skips it —
//! and dropped from the instance without ever entering the cover. The
//! state therefore tracks `Live | InCover | Excluded` per vertex plus
//! the same live-degree array the §IV-B representation uses, so the
//! degree rules read exactly like their in-loop counterparts in
//! `parvc_core::reduce`.

use parvc_graph::{CsrGraph, VertexId};

/// Disposition of a vertex during preprocessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexState {
    /// Still part of the shrinking instance.
    Live,
    /// Forced into the cover: provably in *some* optimal cover.
    InCover,
    /// Proven avoidable: *some* optimal cover skips it, and all of its
    /// remaining neighbors are already covered.
    Excluded,
}

/// The shrinking instance: the immutable original graph plus a
/// per-vertex disposition and live-degree array.
pub struct PrepState<'g> {
    graph: &'g CsrGraph,
    state: Vec<VertexState>,
    degree: Vec<i32>,
    live_vertices: u32,
    live_edges: u64,
    forced: Vec<VertexId>,
    excluded: Vec<VertexId>,
}

impl<'g> PrepState<'g> {
    /// A fresh state: every vertex live, degrees as in `g`.
    pub fn new(graph: &'g CsrGraph) -> Self {
        PrepState {
            graph,
            state: vec![VertexState::Live; graph.num_vertices() as usize],
            degree: graph.vertices().map(|v| graph.degree(v) as i32).collect(),
            live_vertices: graph.num_vertices(),
            live_edges: graph.num_edges(),
            forced: Vec::new(),
            excluded: Vec::new(),
        }
    }

    /// The original graph this state shrinks.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Whether `v` is still part of the instance.
    #[inline]
    pub fn is_live(&self, v: VertexId) -> bool {
        self.state[v as usize] == VertexState::Live
    }

    /// Live degree of `v` (meaningful only while `v` is live).
    #[inline]
    pub fn degree(&self, v: VertexId) -> i32 {
        self.degree[v as usize]
    }

    /// Number of live vertices remaining.
    pub fn live_vertices(&self) -> u32 {
        self.live_vertices
    }

    /// Number of live edges remaining.
    pub fn live_edges(&self) -> u64 {
        self.live_edges
    }

    /// The live vertices, ascending.
    pub fn live_ids(&self) -> Vec<VertexId> {
        (0..self.graph.num_vertices())
            .filter(|&v| self.is_live(v))
            .collect()
    }

    /// The live neighbors of `v`.
    pub fn live_neighbors<'a>(&'a self, v: VertexId) -> impl Iterator<Item = VertexId> + 'a {
        self.graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| self.is_live(u))
    }

    /// Vertices forced into the cover so far (application order).
    pub fn forced(&self) -> &[VertexId] {
        &self.forced
    }

    /// Vertices proven avoidable so far (application order).
    pub fn excluded(&self) -> &[VertexId] {
        &self.excluded
    }

    /// Forces live vertex `v` into the cover, deleting its edges.
    pub fn take_into_cover(&mut self, v: VertexId) {
        assert!(self.is_live(v), "covering non-live vertex {v}");
        let d = self.degree[v as usize];
        self.state[v as usize] = VertexState::InCover;
        self.live_vertices -= 1;
        self.live_edges -= d as u64;
        self.forced.push(v);
        if d > 0 {
            for &u in self.graph.neighbors(v) {
                if self.is_live(u) {
                    self.degree[u as usize] -= 1;
                }
            }
        }
    }

    /// Drops live vertex `v` from the instance without covering it.
    /// Only legal once `v` is isolated (every remaining neighbor is
    /// already in the cover), which is when exclusion is trivially
    /// optimum-preserving.
    pub fn exclude_isolated(&mut self, v: VertexId) {
        assert!(self.is_live(v), "excluding non-live vertex {v}");
        assert_eq!(self.degree[v as usize], 0, "excluding non-isolated {v}");
        self.state[v as usize] = VertexState::Excluded;
        self.live_vertices -= 1;
        self.excluded.push(v);
    }

    /// Consumes the state into `(forced, excluded)` lists.
    pub fn into_decisions(self) -> (Vec<VertexId>, Vec<VertexId>) {
        (self.forced, self.excluded)
    }

    /// Recomputes degrees and counters from scratch and compares —
    /// test/debug oracle, `O(|V| + |E|)`.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut edges = 0u64;
        let mut live = 0u32;
        for v in self.graph.vertices() {
            if !self.is_live(v) {
                continue;
            }
            live += 1;
            let d = self.live_neighbors(v).count() as i32;
            if d != self.degree(v) {
                return Err(format!(
                    "vertex {v}: stored degree {} but {d} live neighbors",
                    self.degree(v)
                ));
            }
            edges += d as u64;
        }
        if live != self.live_vertices {
            return Err(format!(
                "live_vertices {} but recount {live}",
                self.live_vertices
            ));
        }
        if edges / 2 != self.live_edges {
            return Err(format!(
                "live_edges {} but recount {}",
                self.live_edges,
                edges / 2
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::gen;

    #[test]
    fn cover_and_exclude_update_counters() {
        let g = gen::star(5); // hub 0, leaves 1..4
        let mut st = PrepState::new(&g);
        assert_eq!(st.live_edges(), 4);
        st.take_into_cover(0);
        assert_eq!(st.live_edges(), 0);
        assert_eq!(st.live_vertices(), 4);
        for v in 1..5 {
            assert_eq!(st.degree(v), 0);
            st.exclude_isolated(v);
        }
        assert_eq!(st.live_vertices(), 0);
        assert_eq!(st.forced(), &[0]);
        assert_eq!(st.excluded(), &[1, 2, 3, 4]);
        st.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "excluding non-isolated")]
    fn exclude_requires_isolation() {
        let g = gen::path(3);
        let mut st = PrepState::new(&g);
        st.exclude_isolated(1);
    }

    #[test]
    fn consistency_oracle_detects_drift() {
        let g = gen::cycle(6);
        let mut st = PrepState::new(&g);
        st.take_into_cover(0);
        st.check_consistency().unwrap();
        st.live_edges += 3;
        assert!(st.check_consistency().is_err());
    }
}
