//! Executor-parallel Hopcroft–Karp layering and the LP bound on top
//! of it.
//!
//! The in-search component branching of `parvc-core` calls
//! [`crate::lp_lower_bound`] on every extracted component — on massive
//! instances the Hopcroft–Karp run over the bipartite double cover is
//! one of the three hottest flat kernels of a solve. This module
//! re-expresses the HK *BFS layering* as frontier-array passes over
//! the immutable CSR adjacency, dispatched through a
//! [`ParallelExecutor`]:
//!
//! * **layer pass** — expand the current left-side frontier: every
//!   `(u, v)` edge whose right endpoint is matched claims the partner
//!   `mate[v]` for layer `d + 1` with a compare-exchange on an atomic
//!   distance slot. Claims race benignly: every winner writes the same
//!   layer number, so the distance array is identical under any
//!   chunking of the frontier.
//! * **compact pass** — gather the vertices claimed for layer `d + 1`
//!   into the next frontier array, in ascending vertex id
//!   ([`gather_indices`]).
//!
//! The augmenting-path phase stays serial — it mutates the matching —
//! and follows the layered distances exactly like the serial
//! Hopcroft–Karp in [`parvc_graph::matching`]. The exported bound is
//! executor-invariant *by value*: it is `ceil(|M| / 2)` for a
//! **maximum** matching `M` of the double cover, and maximum-matching
//! size is unique regardless of which maximum matching a schedule
//! happens to find.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use parvc_graph::{CsrGraph, GraphBuilder};
use parvc_simgpu::exec::{gather_indices, ChunkSlots, ParallelExecutor};

/// "Unmatched" sentinel in the mate array and "unreached" sentinel in
/// the distance array.
const NIL: u32 = u32::MAX;

/// [`crate::lp_lower_bound`] with the Hopcroft–Karp BFS layering run
/// as flat frontier passes on `exec`.
///
/// Returns exactly the serial bound for every executor: by Kőnig's
/// theorem the serial path's minimum-vertex-cover size equals the
/// maximum-matching size this path computes, and that size is unique.
/// A single-threaded executor short-circuits to the serial
/// implementation.
pub fn lp_lower_bound_exec(g: &CsrGraph, exec: &dyn ParallelExecutor) -> u64 {
    if g.num_edges() == 0 {
        return 0;
    }
    if exec.threads() <= 1 {
        return crate::lp_lower_bound(g);
    }
    let n = g.num_vertices();
    let mut b = GraphBuilder::with_capacity(2 * n, (g.num_edges() * 2) as usize);
    for (u, v) in g.edges() {
        b.add_edge(u, n + v).expect("double-cover ids in range");
        b.add_edge(v, n + u).expect("double-cover ids in range");
    }
    let double_cover = b.build();
    let m = max_matching_size(&double_cover, n as usize, exec);
    (m as u64).div_ceil(2)
}

/// Maximum-matching size of a bipartite graph whose left part is
/// `0..n_left` and right part is `n_left..` (the double cover's
/// layout), by Hopcroft–Karp with executor-parallel BFS layering.
fn max_matching_size(g: &CsrGraph, n_left: usize, exec: &dyn ParallelExecutor) -> usize {
    let mut mate: Vec<u32> = vec![NIL; g.num_vertices() as usize];
    let dist: Vec<AtomicU32> = (0..n_left).map(|_| AtomicU32::new(NIL)).collect();
    let mut frontier: Vec<u32> = Vec::new();
    let mut slots = ChunkSlots::new();
    let mut matched = 0usize;
    loop {
        // BFS phase: layer the left side starting from its free
        // vertices, one frontier-array pass per layer.
        for d in &dist {
            d.store(NIL, Ordering::Relaxed);
        }
        let mate_ro: &[u32] = &mate;
        gather_indices(
            exec,
            n_left,
            &|u| mate_ro[u as usize] == NIL,
            &mut slots,
            &mut frontier,
        );
        for &u in &frontier {
            dist[u as usize].store(0, Ordering::Relaxed);
        }
        let mut layer = 0u32;
        let mut found = false;
        while !frontier.is_empty() {
            let reached_free = AtomicBool::new(false);
            let frontier_ro: &[u32] = &frontier;
            let dist_ro = &dist;
            exec.dispatch(frontier_ro.len(), &|_, start, end| {
                for &u in &frontier_ro[start..end] {
                    for &v in g.neighbors(u) {
                        let w = mate_ro[v as usize];
                        if w == NIL {
                            reached_free.store(true, Ordering::Relaxed);
                        } else {
                            // Claim v's partner for the next layer.
                            let _ = dist_ro[w as usize].compare_exchange(
                                NIL,
                                layer + 1,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            );
                        }
                    }
                }
            });
            if reached_free.load(Ordering::Relaxed) {
                // A free right vertex is reachable at this depth:
                // shortest augmenting length found, stop layering.
                found = true;
                break;
            }
            layer += 1;
            gather_indices(
                exec,
                n_left,
                &|u| dist[u as usize].load(Ordering::Relaxed) == layer,
                &mut slots,
                &mut frontier,
            );
        }
        if !found {
            return matched;
        }
        // Augment phase (serial, like the serial HK's DFS): follow the
        // layered distances from every free left vertex.
        let mut augmented = 0usize;
        for u in 0..n_left as u32 {
            if mate[u as usize] == NIL && try_augment(g, u, &mut mate, &dist) {
                augmented += 1;
            }
        }
        if augmented == 0 {
            return matched;
        }
        matched += augmented;
    }
}

/// One iterative DFS along strictly layer-increasing alternating paths
/// from the free left vertex `u0`; flips the path's edges on success.
/// Dead ends poison their distance slot so later DFS runs skip them —
/// the standard Hopcroft–Karp phase semantics.
fn try_augment(g: &CsrGraph, u0: u32, mate: &mut [u32], dist: &[AtomicU32]) -> bool {
    // Frames: (left vertex, next neighbor index, chosen right vertex).
    let mut stack: Vec<(u32, usize, u32)> = vec![(u0, 0, NIL)];
    loop {
        let top = stack.len() - 1;
        let u = stack[top].0;
        let nbrs = g.neighbors(u);
        if stack[top].1 < nbrs.len() {
            let v = nbrs[stack[top].1];
            stack[top].1 += 1;
            let w = mate[v as usize];
            if w == NIL {
                // Free right endpoint: flip every frame's chosen edge.
                stack[top].2 = v;
                for &(uu, _, vv) in &stack {
                    mate[uu as usize] = vv;
                    mate[vv as usize] = uu;
                }
                return true;
            }
            let du = dist[u as usize].load(Ordering::Relaxed);
            if du != NIL && dist[w as usize].load(Ordering::Relaxed) == du + 1 {
                stack[top].2 = v;
                stack.push((w, 0, NIL));
            }
            continue;
        }
        // Dead end: never retry this vertex within the phase.
        dist[u as usize].store(NIL, Ordering::Relaxed);
        stack.pop();
        if stack.is_empty() {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parvc_graph::gen;
    use parvc_simgpu::exec::{ExecutorSpec, SERIAL};

    #[test]
    fn exec_bound_matches_serial_on_random_graphs() {
        let pooled = ExecutorSpec::Pooled { threads: Some(3) }.build();
        for seed in 0..12 {
            let g = gen::gnp(40, 0.12, seed);
            let serial = crate::lp_lower_bound(&g);
            assert_eq!(lp_lower_bound_exec(&g, &SERIAL), serial, "seed {seed}");
            assert_eq!(lp_lower_bound_exec(&g, &*pooled), serial, "seed {seed}");
        }
    }

    #[test]
    fn exec_bound_on_known_shapes() {
        let pooled = ExecutorSpec::Pooled { threads: Some(2) }.build();
        // C5: LP optimum 5/2 rounds to 3; C7: 7/2 rounds to 4.
        assert_eq!(lp_lower_bound_exec(&gen::cycle(5), &*pooled), 3);
        assert_eq!(lp_lower_bound_exec(&gen::cycle(7), &*pooled), 4);
        // Edgeless: no matching, no bound.
        let edgeless = CsrGraph::from_edges(5, &[]).unwrap();
        assert_eq!(lp_lower_bound_exec(&edgeless, &*pooled), 0);
        // Complete bipartite K_{3,3}: perfect matching of 3 in each
        // cover direction doubles to 6, bound 3 = the MVC.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (2, 4),
                (2, 5),
            ],
        )
        .unwrap();
        assert_eq!(lp_lower_bound_exec(&g, &*pooled), crate::lp_lower_bound(&g));
    }

    #[test]
    fn frontier_matching_reaches_the_maximum_on_paths_and_stars() {
        // A long path exercises multi-layer BFS phases; the HK answer
        // must be the exact maximum matching size.
        let pooled = ExecutorSpec::Pooled { threads: Some(4) }.build();
        for n in [2u32, 3, 9, 16, 33] {
            let g = gen::path(n);
            assert_eq!(
                lp_lower_bound_exec(&g, &*pooled),
                crate::lp_lower_bound(&g),
                "path({n})"
            );
        }
        assert_eq!(
            lp_lower_bound_exec(&gen::star(12), &*pooled),
            crate::lp_lower_bound(&gen::star(12))
        );
    }
}
